module Bytebuf = Engine.Bytebuf
module Proc = Engine.Proc
module Trace = Padico_obs.Trace

let log = Logs.Src.create "vlink"

module Log = (val Logs.src_log log : Logs.LOG)

type event = Connected | Readable | Writable | Peer_closed | Failed of string

type ops = {
  o_write : Bytebuf.t -> int;
  o_read : max:int -> Bytebuf.t option;
  o_readable : unit -> int;
  o_write_space : unit -> int;
  o_close : unit -> unit;
  o_driver : string;
}

type completion = Done of int | Eof | Again | Error of string

type state = Connecting | Connected_st | Closed | Failed_st of string

type req = {
  kind : [ `Read | `Write ];
  buf : Bytebuf.t;
  mutable progress : int;
  mutable result : completion option;
  mutable handler : (completion -> unit) option;
  mutable timer : Padico_fault.Timewheel.timer option;
  owner : t;
}

and t = {
  vnode : Simnet.Node.t;
  mutable ops : ops option;
  mutable st : state;
  reads : req Queue.t;
  writes : req Queue.t;
  mutable evt_handlers : (event -> unit) list;
  mutable peer_closed : bool;
  writable_waiters : (unit -> unit) Queue.t;
  (* Reentrancy guards: a pump's [o_read]/[o_write] can resume a peer
     process synchronously, and that process may post or complete requests
     on this very link — re-entering the pump mid-iteration would pop a
     request out from under the outer loop. The outer loop's progress pass
     picks up whatever the nested call would have handled. *)
  mutable pumping_reads : bool;
  mutable pumping_writes : bool;
}

let create vnode =
  { vnode; ops = None; st = Connecting; reads = Queue.create ();
    writes = Queue.create (); evt_handlers = []; peer_closed = false;
    writable_waiters = Queue.create (); pumping_reads = false;
    pumping_writes = false }

let node t = t.vnode

let driver_name t =
  match t.ops with Some o -> o.o_driver | None -> "(connecting)"

let is_connected t = t.st = Connected_st

let is_closed t = match t.st with Closed | Failed_st _ -> true | _ -> false

let readable_bytes t =
  match t.ops with Some o -> o.o_readable () | None -> 0

let write_space t =
  match t.ops with Some o -> o.o_write_space () | None -> 0

let op_of_kind = function
  | `Read -> Padico_obs.Event.Read
  | `Write -> Padico_obs.Event.Write

let complete req c =
  if req.result = None then begin
    req.result <- Some c;
    (match req.timer with
     | Some tm ->
       Padico_fault.Timewheel.cancel tm;
       req.timer <- None
     | None -> ());
    if Trace.on () then begin
      let result, bytes =
        match c with
        | Done n -> ("done", n)
        | Eof -> ("eof", 0)
        | Again -> ("again", 0)
        | Error _ -> ("error", 0)
      in
      Trace.instant req.owner.vnode
        (Padico_obs.Event.Vl_complete
           { op = op_of_kind req.kind; result; bytes })
    end;
    match req.handler with Some f -> f c | None -> ()
  end

let fire t ev = List.iter (fun f -> f ev) (List.rev t.evt_handlers)

let pump_reads t =
  match t.ops with
  | None -> ()
  | Some _ when t.pumping_reads -> ()
  | Some o ->
    t.pumping_reads <- true;
    let progress = ref true in
    while !progress do
      progress := false;
      match Queue.peek_opt t.reads with
      | None -> ()
      | Some req when req.result <> None ->
        (* Already completed while queued (timeout): drop it so it cannot
           swallow bytes meant for its successors. *)
        ignore (Queue.pop t.reads);
        progress := true
      | Some req ->
        let want = Bytebuf.length req.buf in
        (match o.o_read ~max:want with
         | Some data ->
           let n = Bytebuf.length data in
           Bytebuf.blit_dma ~src:data ~src_off:0 ~dst:req.buf ~dst_off:0
             ~len:n;
           ignore (Queue.pop t.reads);
           (* Completion machinery cost: on the receive latency path. *)
           Simnet.Node.cpu_async t.vnode Calib.vlink_op_ns (fun () ->
               complete req (Done n));
           progress := true
         | None ->
           if t.peer_closed then begin
             ignore (Queue.pop t.reads);
             complete req Eof;
             progress := true
           end)
    done;
    t.pumping_reads <- false

let pump_writes t =
  match t.ops with
  | None -> ()
  | Some _ when t.pumping_writes -> ()
  | Some o ->
    t.pumping_writes <- true;
    let progress = ref true in
    while !progress do
      progress := false;
      match Queue.peek_opt t.writes with
      | None -> ()
      | Some req when req.result <> None ->
        ignore (Queue.pop t.writes);
        progress := true
      | Some req ->
        let len = Bytebuf.length req.buf in
        let remaining = len - req.progress in
        if remaining = 0 then begin
          ignore (Queue.pop t.writes);
          complete req (Done len);
          progress := true
        end
        else begin
          let n = o.o_write (Bytebuf.sub req.buf req.progress remaining) in
          if n > 0 then begin
            req.progress <- req.progress + n;
            if req.progress = len then begin
              ignore (Queue.pop t.writes);
              complete req (Done len)
            end;
            progress := true
          end
        end
    done;
    t.pumping_writes <- false

(* Completing a request can resume its waiter synchronously, and the waiter
   may re-enter the VLink (post, poll, close). Empty both queues before
   completing anything so reentrant observers never see a half-failed
   queue or double-complete a request. *)
let fail_all t msg =
  let drain q =
    let l = Queue.fold (fun acc r -> r :: acc) [] q in
    Queue.clear q;
    List.rev l
  in
  let rs = drain t.reads in
  let ws = drain t.writes in
  List.iter (fun req -> complete req (Error msg)) rs;
  List.iter (fun req -> complete req (Error msg)) ws

(* One-shot writable waiters fire after the queued writes have had first
   claim on the space — and unconditionally on terminal events, so a waiter
   re-polls and meets the error instead of hanging forever. *)
let fire_writable_waiters t =
  while not (Queue.is_empty t.writable_waiters) do
    (Queue.pop t.writable_waiters) ()
  done

let notify t ev =
  (match ev with
   | Connected ->
     if t.st = Connecting then t.st <- Connected_st;
     fire_writable_waiters t
   | Readable -> pump_reads t
   | Writable ->
     pump_writes t;
     (match t.ops with
      | Some o when o.o_write_space () > 0 -> fire_writable_waiters t
      | _ -> ())
   | Peer_closed ->
     t.peer_closed <- true;
     pump_reads t;
     (match t.ops with
      | Some o when o.o_write_space () = 0 && not (Queue.is_empty t.writes) ->
        (* The driver's write path died with the peer (MadIO reports zero
           write space once closed): a pending write can never flush — fail
           it rather than leave it hanging forever. TCP keeps write space
           across a half-close, so it is unaffected. *)
        Queue.iter (fun req -> complete req (Error "peer closed")) t.writes;
        Queue.clear t.writes
      | _ -> ());
     fire_writable_waiters t
   | Failed msg ->
     t.st <- Failed_st msg;
     fail_all t msg;
     fire_writable_waiters t);
  fire t ev

let attach_ops t ops =
  (match t.ops with
   | Some _ -> invalid_arg "Vlink.attach_ops: ops already attached"
   | None -> t.ops <- Some ops);
  if Trace.on () then
    Trace.instant t.vnode
      (Padico_obs.Event.Vl_connect { driver = ops.o_driver });
  notify t Connected;
  pump_writes t;
  pump_reads t

let create_connected vnode ops =
  let t = create vnode in
  attach_ops t ops;
  t

(* A deadline rides on the per-simulator timeout wheel: armed in numbers,
   cancelled by {!complete} in the common case. On expiry the request
   completes [Error "timeout"] and the pump drops its corpse from the queue
   so followers are not blocked behind it. *)
let arm_timeout t req timeout_ns =
  match timeout_ns with
  | None -> ()
  | Some after_ns ->
    if after_ns <= 0 then invalid_arg "Vlink: timeout_ns must be positive";
    let wheel = Padico_fault.Timewheel.for_clock (Simnet.Node.clock t.vnode) in
    req.timer <-
      Some
        (Padico_fault.Timewheel.arm wheel ~after_ns (fun () ->
             if req.result = None then begin
               req.timer <- None;
               if Trace.on () then
                 Trace.instant t.vnode
                   (Padico_obs.Event.Vl_timeout
                      { op = op_of_kind req.kind; after_ns });
               complete req (Error "timeout");
               match req.kind with
               | `Read -> pump_reads t
               | `Write -> pump_writes t
             end))

let post_read ?timeout_ns t buf =
  if Bytebuf.length buf = 0 then invalid_arg "Vlink.post_read: empty buffer";
  let req =
    { kind = `Read; buf; progress = 0; result = None; handler = None;
      timer = None; owner = t }
  in
  if Trace.on () then
    Trace.instant t.vnode
      (Padico_obs.Event.Vl_post
         { op = Padico_obs.Event.Read; bytes = Bytebuf.length buf });
  (match t.st with
   | Failed_st msg -> complete req (Error msg)
   | Closed -> complete req (Error "closed")
   | Connecting | Connected_st ->
     Queue.push req t.reads;
     arm_timeout t req timeout_ns;
     Simnet.Node.cpu_async t.vnode Calib.vlink_op_ns (fun () -> pump_reads t));
  req

let post_write ?timeout_ns ?(nonblock = false) t buf =
  let req =
    { kind = `Write; buf; progress = 0; result = None; handler = None;
      timer = None; owner = t }
  in
  if Trace.on () then
    Trace.instant t.vnode
      (Padico_obs.Event.Vl_post
         { op = Padico_obs.Event.Write; bytes = Bytebuf.length buf });
  (match t.st with
   | Failed_st msg -> complete req (Error msg)
   | Closed -> complete req (Error "closed")
   | Connecting | Connected_st ->
     if t.peer_closed
        && (match t.ops with Some o -> o.o_write_space () = 0 | None -> false)
     then
       (* Same dead-write-path rule as the [Peer_closed] notification:
          accepting the request would strand it forever. *)
       complete req (Error "peer closed")
     else if nonblock then begin
       (* EAGAIN semantics: one driver attempt, never queued. A partial
          acceptance completes [Done n] with n < length; no space at all
          (or not yet connected) completes [Again]. *)
       Simnet.Node.cpu_async t.vnode Calib.vlink_op_ns (fun () -> ());
       match t.ops with
       | None -> complete req Again
       | Some o ->
         if Bytebuf.length buf = 0 then complete req (Done 0)
         else begin
           let n = o.o_write buf in
           if n > 0 then complete req (Done n) else complete req Again
         end
     end
     else begin
       Queue.push req t.writes;
       arm_timeout t req timeout_ns;
       (* Post machinery cost: on the send latency path. *)
       Simnet.Node.cpu_async t.vnode Calib.vlink_op_ns (fun () ->
           pump_writes t)
     end);
  req

let on_writable t f =
  match t.st with
  | Closed | Failed_st _ -> f ()
  | Connecting -> Queue.push f t.writable_waiters
  | Connected_st ->
    (match t.ops with
     | Some o when o.o_write_space () > 0 && Queue.is_empty t.writes -> f ()
     | _ -> Queue.push f t.writable_waiters)

let poll req = req.result

let set_handler req f =
  match req.result with
  | Some c -> f c
  | None -> req.handler <- Some f

let await req =
  match req.result with
  | Some c -> c
  | None -> Proc.suspend (fun resume -> req.handler <- Some resume)

let close t =
  match t.st with
  | Closed | Failed_st _ -> ()
  | Connecting | Connected_st ->
    (match t.ops with Some o -> o.o_close () | None -> ());
    t.st <- Closed;
    (* Pending reads see end-of-stream; pending writes are aborted. *)
    Queue.iter (fun req -> complete req Eof) t.reads;
    Queue.clear t.reads;
    Queue.iter (fun req -> complete req (Error "closed")) t.writes;
    Queue.clear t.writes;
    fire_writable_waiters t

let on_event t f = t.evt_handlers <- f :: t.evt_handlers

let await_connected t =
  match t.st with
  | Connected_st -> Ok ()
  | Failed_st m -> Error m
  | Closed -> Error "closed"
  | Connecting ->
    (* The handler stays registered for the VLink's lifetime, but the
       continuation must fire exactly once: a session that connects and
       later fails would otherwise resume it a second time. *)
    Proc.suspend (fun resume ->
        let fired = ref false in
        let once r =
          if not !fired then begin
            fired := true;
            resume r
          end
        in
        on_event t (function
          | Connected -> once (Ok ())
          | Failed m -> once (Error m)
          | Readable | Writable | Peer_closed -> ()))
