(** Cipher VLink adapter: authenticated stream encryption stacked over any
    other VLink. The selector inserts it automatically on untrusted links
    ("if the network is secure, it is useless to cipher data"). *)

val wrap : ?rx_high:int -> ?rx_low:int -> key:Methods.Crypto.key -> Vl.t -> Vl.t
(** Backpressure-aware: writes are accepted only up to the inner link's
    write space (counting frame overhead), and the decrypt loop pauses
    when more than [rx_high] plaintext bytes (default 256 KiB) sit unread,
    resuming below [rx_low] (default [rx_high / 4]). *)

val driver_name : string
