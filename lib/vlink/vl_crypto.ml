module Bytebuf = Engine.Bytebuf
module Crypto = Methods.Crypto

let log = Logs.Src.create "vlink.crypto"

module Log = (val Logs.src_log log : Logs.LOG)

let driver_name = "crypto"

module Trace = Padico_obs.Trace

let trace_adapter node dir bytes =
  if Trace.on () then
    Trace.instant node
      (Padico_obs.Event.Adapter { adapter = driver_name; dir; bytes })

let chunk_max = 16_384

(* Frame: [u32 len | len ciphered bytes] where the ciphered body carries the
   Crypto authentication trailer. *)

type st = {
  inner : Vl.t;
  key : Crypto.key;
  rx : Streamq.t;
  pending : Streamq.t;
  mutable want : int option;
  node : Simnet.Node.t;
  mutable outer : Vl.t option;
  mutable closed : bool;
  mutable rx_paused : bool;
  mutable inner_eof : bool;  (* inner stream fully drained to Eof *)
  mutable inflight : int;  (* decrypt cpu charges not yet landed *)
  mutable wr_inflight : int;  (* ciphered frames posted, not yet accepted *)
}

let trace_flow node action bytes =
  if Trace.on () then
    Trace.instant node
      (Padico_obs.Event.Flow { action; place = driver_name; bytes })

(* Worst-case wire bytes for one plaintext chunk: frame length word plus
   the cipher's constant authentication overhead. *)
let frame_overhead = 4 + Crypto.overhead

let charge st n k =
  Simnet.Node.cpu_async st.node
    (int_of_float (Calib.cipher_per_byte_ns *. float_of_int n))
    k

let parse st =
  let out = ref [] in
  let continue = ref true in
  while !continue do
    match st.want with
    | None ->
      if Streamq.length st.pending >= 4 then begin
        let h = Streamq.pop_exact st.pending 4 in
        st.want <- Some (Bytebuf.get_u32 h 0)
      end
      else continue := false
    | Some len ->
      if Streamq.length st.pending >= len then begin
        let body = Streamq.pop_exact st.pending len in
        st.want <- None;
        match Crypto.decrypt st.key body with
        | Ok plain -> out := plain :: !out
        | Error e ->
          Log.err (fun m -> m "vl_crypto: %s" e);
          (match st.outer with
           | Some vl -> Vl.notify vl (Vl.Failed e)
           | None -> ());
          continue := false
      end
      else continue := false
  done;
  List.rev !out

(* End of stream is only surfaced once every ciphered byte has been
   decrypted and queued: the inner Eof (or Peer_closed event) races with
   ciphertext still in the parse/charge pipeline, and forwarding it
   eagerly would discard data the peer sent before closing. *)
let maybe_eof st =
  if st.inner_eof && st.inflight = 0 then
    match st.outer with
    | Some vl -> Vl.notify vl Vl.Peer_closed
    | None -> ()

(* Closing must not guillotine ciphered frames already accepted by
   [o_write] but still queued in the inner driver — the peer would see
   silent truncation. The inner close waits for the last frame. *)
let flush_close st =
  if st.closed && st.wr_inflight = 0 && not (Vl.is_closed st.inner) then
    Vl.close st.inner

(* Keep one inner read posted while the rx queue is under its high
   watermark; above it the loop parks and unread ciphertext backs up in
   the inner driver (backpressure, not hidden buffering). *)
let rec read_loop st =
  if (not st.closed) && not st.inner_eof then begin
    if Streamq.above_high st.rx then begin
      st.rx_paused <- true;
      trace_flow st.node "pause" (Streamq.length st.rx)
    end
    else begin
      let buf = Bytebuf.create 65_536 in
      let req = Vl.post_read st.inner buf in
      Vl.set_handler req (function
        | Vl.Done n ->
          Streamq.push st.pending (Bytebuf.sub buf 0 n);
          let chunks = parse st in
          let bytes = List.fold_left (fun a c -> a + Bytebuf.length c) 0 chunks in
          if bytes > 0 then trace_adapter st.node Padico_obs.Event.Unwrap bytes;
          st.inflight <- st.inflight + 1;
          charge st bytes (fun () ->
              st.inflight <- st.inflight - 1;
              List.iter (Streamq.push st.rx) chunks;
              (match st.outer with
               | Some vl when not (Streamq.is_empty st.rx) ->
                 Vl.notify vl Vl.Readable
               | _ -> ());
              read_loop st;
              maybe_eof st)
        | Vl.Again -> read_loop st
        | Vl.Eof ->
          st.inner_eof <- true;
          maybe_eof st
        | Vl.Error e ->
          (match st.outer with Some vl -> Vl.notify vl (Vl.Failed e) | None -> ()))
    end
  end

let resume_reads st =
  if st.rx_paused && Streamq.below_low st.rx then begin
    st.rx_paused <- false;
    trace_flow st.node "resume" (Streamq.length st.rx);
    read_loop st
  end

let ops st =
  { Vl.o_write =
      (fun buf ->
         if st.closed then 0
         else begin
           let total = Bytebuf.length buf in
           (* Accept only what the inner link has room for, counting the
              per-frame overhead, so backpressure is forwarded instead of
              absorbed in an unbounded inner write queue. *)
           let budget = ref (Stdlib.max 0 (Vl.write_space st.inner)) in
           let pos = ref 0 in
           let continue = ref true in
           while !continue && !pos < total do
             let n =
               min (min chunk_max (total - !pos)) (!budget - frame_overhead)
             in
             if n <= 0 then continue := false
             else begin
               let body = Crypto.encrypt st.key (Bytebuf.sub buf !pos n) in
               let frame = Bytebuf.create (4 + Bytebuf.length body) in
               Bytebuf.set_u32 frame 0 (Bytebuf.length body);
               Bytebuf.blit ~src:body ~src_off:0 ~dst:frame ~dst_off:4
                 ~len:(Bytebuf.length body);
               charge st n (fun () -> ());
               st.wr_inflight <- st.wr_inflight + 1;
               let req = Vl.post_write st.inner frame in
               Vl.set_handler req (fun _ ->
                   st.wr_inflight <- st.wr_inflight - 1;
                   flush_close st);
               budget := !budget - Bytebuf.length frame;
               pos := !pos + n
             end
           done;
           if !pos > 0 then trace_adapter st.node Padico_obs.Event.Wrap !pos;
           !pos
         end);
    o_read =
      (fun ~max ->
         let r = Streamq.pop st.rx ~max in
         resume_reads st;
         r);
    o_readable = (fun () -> Streamq.length st.rx);
    o_write_space =
      (fun () ->
         if st.closed then 0
         else Stdlib.max 0 (Vl.write_space st.inner - frame_overhead));
    o_close =
      (fun () ->
         st.closed <- true;
         flush_close st);
    o_driver = driver_name }

let wrap ?(rx_high = 262_144) ?rx_low ~key inner =
  let rx_low = match rx_low with Some l -> l | None -> rx_high / 4 in
  let st =
    { inner; key; rx = Streamq.create ~high:rx_high ~low:rx_low ();
      pending = Streamq.create (); want = None; node = Vl.node inner;
      outer = None; closed = false; rx_paused = false; inner_eof = false;
      inflight = 0; wr_inflight = 0 }
  in
  let connected_now = Vl.is_connected inner in
  let vl =
    if connected_now then Vl.create_connected (Vl.node inner) (ops st)
    else Vl.create (Vl.node inner)
  in
  st.outer <- Some vl;
  (* One forwarding handler for both connect paths: backpressure release
     (inner Writable), peer death and failures all propagate up instead of
     being swallowed while the read loop is parked. *)
  Vl.on_event inner (function
    | Vl.Connected ->
      if not connected_now then Vl.attach_ops vl (ops st);
      read_loop st
    | Vl.Writable -> Vl.notify vl Vl.Writable
    | Vl.Peer_closed ->
      (* FIN may precede ciphertext still buffered in the inner driver:
         keep the read loop draining; {!maybe_eof} forwards end-of-stream
         once the decrypt pipeline runs dry. *)
      ()
    | Vl.Failed e -> Vl.notify vl (Vl.Failed e)
    | Vl.Readable -> ());
  if connected_now then read_loop st;
  vl
