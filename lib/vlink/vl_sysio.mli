(** VLink driver over NetAccess SysIO (TCP sockets) — the {e straight}
    adapter for the distributed paradigm on distributed hardware. *)

val connect :
  Netaccess.Sysio.t -> Netaccess.Sysio.stack -> dst:int -> port:int -> Vl.t
(** Returns immediately with a connecting descriptor. *)

val listen :
  Netaccess.Sysio.t -> Netaccess.Sysio.stack -> port:int -> (Vl.t -> unit) ->
  unit

val driver_name : string
