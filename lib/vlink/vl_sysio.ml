module Tcp = Drivers.Tcp
module Sysio = Netaccess.Sysio

let driver_name = "sysio"

let ops_of_conn conn =
  { Vl.o_write = Sysio.write conn;
    o_read = (fun ~max -> Sysio.read conn ~max);
    o_readable = (fun () -> Sysio.readable_bytes conn);
    o_write_space = (fun () -> Sysio.write_space conn);
    o_close = (fun () -> Sysio.close conn);
    o_driver = driver_name }

let wire vl conn =
  (* Connection-level events go through the SysIO receipt loop already
     (Sysio.watch); translate them for the descriptor. *)
  function
  | Tcp.Established -> Vl.attach_ops vl (ops_of_conn conn)
  | Tcp.Readable -> Vl.notify vl Vl.Readable
  | Tcp.Writable -> Vl.notify vl Vl.Writable
  | Tcp.Peer_closed -> Vl.notify vl Vl.Peer_closed
  | Tcp.Reset -> Vl.notify vl (Vl.Failed "connection reset")

let connect sio stack ~dst ~port =
  let vl = Vl.create (Sysio.stack_node stack) in
  let conn = Netaccess.Sysio.connect sio stack ~dst ~port (fun conn ev ->
      wire vl conn ev)
  in
  ignore conn;
  vl

let listen sio stack ~port accept =
  Netaccess.Sysio.listen sio stack ~port (fun conn ->
      (* The connection is already established when handed over. *)
      let vl = Vl.create (Sysio.stack_node stack) in
      Netaccess.Sysio.watch sio conn (wire vl conn);
      Vl.attach_ops vl (ops_of_conn conn);
      accept vl;
      (* The accept callback is dispatched through the arbitration core
         and TCP events are edge-triggered: an edge fired before the watch
         above went to the previous callback. A missed [Readable] heals
         itself (VLink's read pump polls the descriptor) but [Peer_closed]
         fires exactly once — catch up or a pending read hangs forever. *)
      if Sysio.peer_closed conn then Vl.notify vl Vl.Peer_closed)
