module Bytebuf = Engine.Bytebuf

type t = {
  chunks : Bytebuf.t Queue.t;
  (* Remainder of a split head chunk. Keeping it in a dedicated slot makes
     [pop] O(1): reinserting it at the front of the queue would cost a
     full-queue transfer per bounded read. *)
  mutable front : Bytebuf.t option;
  mutable len : int;
  mutable peak : int;
  high : int;
  low : int;
}

let create ?(high = max_int) ?low () =
  let low = match low with Some l -> l | None -> if high = max_int then max_int else high / 2 in
  if high < 0 || low < 0 || low > high then
    invalid_arg "Streamq.create: need 0 <= low <= high";
  { chunks = Queue.create (); front = None; len = 0; peak = 0; high; low }

let push t b =
  if Bytebuf.length b > 0 then begin
    Queue.push b t.chunks;
    t.len <- t.len + Bytebuf.length b;
    if t.len > t.peak then t.peak <- t.len
  end

let pop t ~max =
  if t.len = 0 || max <= 0 then None
  else begin
    let head =
      match t.front with
      | Some b ->
        t.front <- None;
        b
      | None -> Queue.pop t.chunks
    in
    let hlen = Bytebuf.length head in
    let out =
      if hlen <= max then head
      else begin
        let a, b = Bytebuf.split head max in
        t.front <- Some b;
        a
      end
    in
    t.len <- t.len - Bytebuf.length out;
    Some out
  end

let pop_exact t n =
  if n < 0 then invalid_arg "Streamq.pop_exact: negative length";
  if n > t.len then invalid_arg "Streamq.pop_exact: not enough bytes";
  if n = 0 then Bytebuf.create 0
  else
    match pop t ~max:n with
    | Some first when Bytebuf.length first = n -> first
    | Some first ->
      let out = Bytebuf.create n in
      Bytebuf.blit_dma ~src:first ~src_off:0 ~dst:out ~dst_off:0
        ~len:(Bytebuf.length first);
      let filled = ref (Bytebuf.length first) in
      while !filled < n do
        match pop t ~max:(n - !filled) with
        | Some part ->
          Bytebuf.blit_dma ~src:part ~src_off:0 ~dst:out ~dst_off:!filled
            ~len:(Bytebuf.length part);
          filled := !filled + Bytebuf.length part
        | None -> invalid_arg "Streamq.pop_exact: queue underflow"
      done;
      out
    | None -> invalid_arg "Streamq.pop_exact: queue underflow"

let length t = t.len

let is_empty t = t.len = 0

let peak t = t.peak

let high_watermark t = t.high

let low_watermark t = t.low

let above_high t = t.len >= t.high

let below_low t = t.len <= t.low

let writable t = t.len < t.high
