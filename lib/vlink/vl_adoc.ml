module Bytebuf = Engine.Bytebuf
module Adoc = Methods.Adoc
module Trace = Padico_obs.Trace

let driver_name = "adoc"

let trace_adapter node dir bytes =
  if Trace.on () then
    Trace.instant node
      (Padico_obs.Event.Adapter { adapter = driver_name; dir; bytes })

type st = {
  inner : Vl.t;
  codec : Adoc.t;
  decoder : Adoc.Decoder.d;
  rx : Streamq.t;
  node : Simnet.Node.t;
  mutable outer : Vl.t option;
  mutable closed : bool;
}

let charge st per_byte n k =
  Simnet.Node.cpu_async st.node
    (int_of_float (per_byte *. float_of_int n))
    k

(* Keep one inner read posted at all times; decode into the rx queue. *)
let rec read_loop st =
  if not st.closed then begin
    let buf = Bytebuf.create 65_536 in
    let req = Vl.post_read st.inner buf in
    Vl.set_handler req (function
      | Vl.Done n ->
        let chunks = Adoc.Decoder.feed st.decoder (Bytebuf.sub buf 0 n) in
        let decompressed =
          List.fold_left (fun acc c -> acc + Bytebuf.length c) 0 chunks
        in
        trace_adapter st.node Padico_obs.Event.Unwrap decompressed;
        (* Decompression CPU, then deliver. *)
        charge st Calib.decompress_per_byte_ns decompressed (fun () ->
            List.iter (Streamq.push st.rx) chunks;
            (match st.outer with
             | Some vl when not (Streamq.is_empty st.rx) ->
               Vl.notify vl Vl.Readable
             | _ -> ());
            read_loop st)
      | Vl.Eof ->
        (match st.outer with
         | Some vl -> Vl.notify vl Vl.Peer_closed
         | None -> ())
      | Vl.Error e ->
        (match st.outer with
         | Some vl -> Vl.notify vl (Vl.Failed e)
         | None -> ()))
  end

let ops st =
  { Vl.o_write =
      (fun buf ->
         if st.closed then 0
         else begin
           let total = Bytebuf.length buf in
           trace_adapter st.node Padico_obs.Event.Wrap total;
           let pos = ref 0 in
           while !pos < total do
             let n = min (Adoc.chunk_size st.codec) (total - !pos) in
             let chunk = Bytebuf.sub buf !pos n in
             let frame, decision = Adoc.encode st.codec chunk in
             (* Compression CPU precedes the wire. *)
             (match decision with
              | Adoc.Compress -> charge st Calib.compress_per_byte_ns n (fun () -> ())
              | Adoc.Pass -> ());
             ignore (Vl.post_write st.inner frame);
             pos := !pos + n
           done;
           total
         end);
    o_read = (fun ~max -> Streamq.pop st.rx ~max);
    o_readable = (fun () -> Streamq.length st.rx);
    o_write_space =
      (fun () -> if st.closed then 0 else Stdlib.max 0 (Vl.write_space st.inner));
    o_close =
      (fun () ->
         st.closed <- true;
         Vl.close st.inner);
    o_driver = driver_name }

let wrap ?chunk ~link_bandwidth_bps inner =
  let st =
    { inner; codec = Adoc.create ?chunk ~link_bandwidth_bps ();
      decoder = Adoc.Decoder.create (); rx = Streamq.create ();
      node = Vl.node inner; outer = None; closed = false }
  in
  let vl =
    if Vl.is_connected inner then Vl.create_connected (Vl.node inner) (ops st)
    else begin
      let vl = Vl.create (Vl.node inner) in
      Vl.on_event inner (function
        | Vl.Connected -> Vl.attach_ops vl (ops st)
        | Vl.Failed e -> Vl.notify vl (Vl.Failed e)
        | Vl.Readable | Vl.Writable | Vl.Peer_closed -> ());
      vl
    end
  in
  st.outer <- Some vl;
  if Vl.is_connected inner then read_loop st
  else
    Vl.on_event inner (function
      | Vl.Connected -> read_loop st
      | _ -> ());
  vl
