module Bytebuf = Engine.Bytebuf
module Adoc = Methods.Adoc
module Trace = Padico_obs.Trace

let driver_name = "adoc"

let trace_adapter node dir bytes =
  if Trace.on () then
    Trace.instant node
      (Padico_obs.Event.Adapter { adapter = driver_name; dir; bytes })

let trace_flow node action bytes =
  if Trace.on () then
    Trace.instant node
      (Padico_obs.Event.Flow { action; place = driver_name; bytes })

type st = {
  inner : Vl.t;
  codec : Adoc.t;
  decoder : Adoc.Decoder.d;
  rx : Streamq.t;
  node : Simnet.Node.t;
  mutable outer : Vl.t option;
  mutable closed : bool;
  mutable rx_paused : bool;
  mutable inner_eof : bool;  (* inner stream fully drained to Eof *)
  mutable inflight : int;  (* decompress cpu charges not yet landed *)
  mutable wr_inflight : int;  (* coded frames posted, not yet accepted *)
}

let charge st per_byte n k =
  Simnet.Node.cpu_async st.node
    (int_of_float (per_byte *. float_of_int n))
    k

(* End of stream is only surfaced once every coded byte has been
   decompressed and queued: the inner Eof (or Peer_closed event) races
   with frames still in the decode/charge pipeline, and forwarding it
   eagerly would discard data the peer sent before closing. *)
let maybe_eof st =
  if st.inner_eof && st.inflight = 0 then
    match st.outer with
    | Some vl -> Vl.notify vl Vl.Peer_closed
    | None -> ()

(* Closing must not guillotine coded frames already accepted by [o_write]
   but still queued in the inner driver — the peer would see silent
   truncation. The inner close waits for the last frame. *)
let flush_close st =
  if st.closed && st.wr_inflight = 0 && not (Vl.is_closed st.inner) then
    Vl.close st.inner

(* Keep one inner read posted while the rx queue is under its high
   watermark; decode into the rx queue. Above the watermark the loop
   parks ([rx_paused]) and the unread bytes back up in the inner driver —
   backpressure propagates down instead of hiding here. *)
let rec read_loop st =
  if (not st.closed) && not st.inner_eof then begin
    if Streamq.above_high st.rx then begin
      st.rx_paused <- true;
      trace_flow st.node "pause" (Streamq.length st.rx)
    end
    else begin
      let buf = Bytebuf.create 65_536 in
      let req = Vl.post_read st.inner buf in
      Vl.set_handler req (function
        | Vl.Done n ->
          let chunks = Adoc.Decoder.feed st.decoder (Bytebuf.sub buf 0 n) in
          let decompressed =
            List.fold_left (fun acc c -> acc + Bytebuf.length c) 0 chunks
          in
          trace_adapter st.node Padico_obs.Event.Unwrap decompressed;
          (* Decompression CPU, then deliver. *)
          st.inflight <- st.inflight + 1;
          charge st Calib.decompress_per_byte_ns decompressed (fun () ->
              st.inflight <- st.inflight - 1;
              List.iter (Streamq.push st.rx) chunks;
              (match st.outer with
               | Some vl when not (Streamq.is_empty st.rx) ->
                 Vl.notify vl Vl.Readable
               | _ -> ());
              read_loop st;
              maybe_eof st)
        | Vl.Again -> read_loop st
        | Vl.Eof ->
          st.inner_eof <- true;
          maybe_eof st
        | Vl.Error e ->
          (match st.outer with
           | Some vl -> Vl.notify vl (Vl.Failed e)
           | None -> ()))
    end
  end

let resume_reads st =
  if st.rx_paused && Streamq.below_low st.rx then begin
    st.rx_paused <- false;
    trace_flow st.node "resume" (Streamq.length st.rx);
    read_loop st
  end

let ops st =
  { Vl.o_write =
      (fun buf ->
         if st.closed then 0
         else begin
           let total = Bytebuf.length buf in
           (* Accept only what the inner driver has room for (worst case:
              an uncompressible chunk costs its length plus the frame
              header) so backpressure is forwarded instead of absorbed in
              an unbounded inner write queue. *)
           let budget = ref (Stdlib.max 0 (Vl.write_space st.inner)) in
           let pos = ref 0 in
           let continue = ref true in
           while !continue && !pos < total do
             let n =
               min
                 (min (Adoc.chunk_size st.codec) (total - !pos))
                 (!budget - Adoc.frame_header_len)
             in
             if n <= 0 then continue := false
             else begin
               let chunk = Bytebuf.sub buf !pos n in
               let frame, decision = Adoc.encode st.codec chunk in
               (* Compression CPU precedes the wire. *)
               (match decision with
                | Adoc.Compress ->
                  charge st Calib.compress_per_byte_ns n (fun () -> ())
                | Adoc.Pass -> ());
               st.wr_inflight <- st.wr_inflight + 1;
               let req = Vl.post_write st.inner frame in
               Vl.set_handler req (fun _ ->
                   st.wr_inflight <- st.wr_inflight - 1;
                   flush_close st);
               budget := !budget - Bytebuf.length frame;
               pos := !pos + n
             end
           done;
           if !pos > 0 then trace_adapter st.node Padico_obs.Event.Wrap !pos;
           !pos
         end);
    o_read =
      (fun ~max ->
         let r = Streamq.pop st.rx ~max in
         resume_reads st;
         r);
    o_readable = (fun () -> Streamq.length st.rx);
    o_write_space =
      (fun () ->
         if st.closed then 0
         else
           Stdlib.max 0
             (Vl.write_space st.inner - Adoc.frame_header_len));
    o_close =
      (fun () ->
         st.closed <- true;
         flush_close st);
    o_driver = driver_name }

let wrap ?chunk ?(rx_high = 262_144) ?rx_low ~link_bandwidth_bps inner =
  let rx_low = match rx_low with Some l -> l | None -> rx_high / 4 in
  let st =
    { inner; codec = Adoc.create ?chunk ~link_bandwidth_bps ();
      decoder = Adoc.Decoder.create ();
      rx = Streamq.create ~high:rx_high ~low:rx_low ();
      node = Vl.node inner; outer = None; closed = false; rx_paused = false;
      inner_eof = false; inflight = 0; wr_inflight = 0 }
  in
  let connected_now = Vl.is_connected inner in
  let vl =
    if connected_now then Vl.create_connected (Vl.node inner) (ops st)
    else Vl.create (Vl.node inner)
  in
  st.outer <- Some vl;
  (* One forwarding handler for both connect paths: backpressure release
     (inner Writable), peer death and failures all propagate up instead of
     being swallowed while the read loop is parked. *)
  Vl.on_event inner (function
    | Vl.Connected ->
      if not connected_now then Vl.attach_ops vl (ops st);
      read_loop st
    | Vl.Writable -> Vl.notify vl Vl.Writable
    | Vl.Peer_closed ->
      (* FIN may precede coded bytes still buffered in the inner driver:
         keep the read loop draining; {!maybe_eof} forwards end-of-stream
         once the decode pipeline runs dry. *)
      ()
    | Vl.Failed e -> Vl.notify vl (Vl.Failed e)
    | Vl.Readable -> ());
  if connected_now then read_loop st;
  vl
