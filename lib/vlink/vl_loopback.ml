module Bytebuf = Engine.Bytebuf

let driver_name = "loopback"

type half = {
  rx : Streamq.t;
  mutable peer : Vl.t option;
  mutable closed : bool;
}

let listeners : (int * int, Vl.t -> unit) Hashtbl.t = Hashtbl.create 16
let () = Engine.Lifecycle.on_reset (fun () -> Hashtbl.reset listeners)

let ops node mine theirs =
  { Vl.o_write =
      (fun buf ->
         if mine.closed then 0
         else begin
           let n = Bytebuf.length buf in
           (* One pipe-style copy, charged as memcpy. *)
           let cost =
             500 + int_of_float (Calib.memcpy_per_byte_ns *. float_of_int n)
           in
           let data = Bytebuf.copy buf in
           Simnet.Node.cpu_async node cost (fun () ->
               if not theirs.closed then begin
                 Streamq.push theirs.rx data;
                 match theirs.peer with
                 | Some vl -> Vl.notify vl Vl.Readable
                 | None -> ()
               end);
           n
         end);
    o_read = (fun ~max -> Streamq.pop mine.rx ~max);
    o_readable = (fun () -> Streamq.length mine.rx);
    o_write_space = (fun () -> if mine.closed then 0 else max_int);
    o_close =
      (fun () ->
         mine.closed <- true;
         (* Defer through the same CPU queue so EOF cannot overtake data
            already in flight. *)
         Simnet.Node.cpu_async node 500 (fun () ->
             match theirs.peer with
             | Some vl -> Vl.notify vl Vl.Peer_closed
             | None -> ()));
    o_driver = driver_name }

let pair node =
  let a = { rx = Streamq.create (); peer = None; closed = false } in
  let b = { rx = Streamq.create (); peer = None; closed = false } in
  let va = Vl.create_connected node (ops node a b) in
  let vb = Vl.create_connected node (ops node b a) in
  a.peer <- Some va;
  b.peer <- Some vb;
  (va, vb)

let listen node ~port accept =
  let key = (Simnet.Node.uid node, port) in
  if Hashtbl.mem listeners key then
    invalid_arg
      (Printf.sprintf "Vl_loopback.listen: port %d already bound" port);
  Hashtbl.replace listeners key accept

let unlisten node ~port = Hashtbl.remove listeners (Simnet.Node.uid node, port)

let connect node ~port =
  match Hashtbl.find_opt listeners (Simnet.Node.uid node, port) with
  | None ->
    let vl = Vl.create node in
    Vl.notify vl (Vl.Failed "connection refused");
    vl
  | Some accept ->
    let client, server = pair node in
    accept server;
    client
