(** AdOC VLink adapter: adaptive online compression stacked over any other
    VLink (typically SysIO/TCP on a slow WAN). Both ends must use the
    adapter. Compression CPU time is charged; the decision to compress is
    re-evaluated per chunk (see {!Methods.Adoc}). *)

val wrap :
  ?chunk:int ->
  ?rx_high:int ->
  ?rx_low:int ->
  link_bandwidth_bps:float ->
  Vl.t ->
  Vl.t
(** [wrap inner] returns a descriptor whose writes are compressed
    (adaptively) and whose reads are decompressed. Closing the wrapper
    closes [inner].

    Backpressure propagates both ways: writes are accepted only up to the
    inner link's write space (never absorbed into a hidden queue), and the
    decode loop pauses when more than [rx_high] decompressed bytes
    (default 256 KiB) sit unread, resuming below [rx_low] (default
    [rx_high / 4]). *)

val driver_name : string
