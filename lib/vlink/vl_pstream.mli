(** Parallel-streams VLink driver: one logical link striped over several TCP
    connections (GridFTP-style).

    On a high-bandwidth high-latency WAN each isolated TCP loss halves one
    stream's congestion window; striping over [n] sockets confines every
    loss to 1/n of the aggregate, recovering most of the link bandwidth
    (experiment E4). Frames carry a global sequence number; the receiver
    reorders across streams and delivers a plain in-order byte stream. *)

val connect :
  Netaccess.Sysio.t ->
  Netaccess.Sysio.stack ->
  dst:int ->
  port:int ->
  streams:int ->
  Vl.t

val listen :
  Netaccess.Sysio.t -> Netaccess.Sysio.stack -> port:int -> (Vl.t -> unit) -> unit
(** Accepts grouped connection bundles on [port]. *)

val driver_name : string

val default_block : int
(** Striping block size (bytes). *)

val default_rx_high : int
(** Reassembly high watermark (bytes): when this many in-order bytes sit
    unread, member draining parks and every stripe's TCP receive window
    closes; draining resumes below a quarter of this. *)
