module Bytebuf = Engine.Bytebuf
module Tcp = Drivers.Tcp
module Sysio = Netaccess.Sysio

let log = Logs.Src.create "vlink.pstream"

module Log = (val Logs.src_log log : Logs.LOG)

let driver_name = "pstream"

module Trace = Padico_obs.Trace

let trace_adapter node dir bytes =
  if Trace.on () then
    Trace.instant node
      (Padico_obs.Event.Adapter { adapter = driver_name; dir; bytes })

let default_block = 16_384

(* Stream-member handshake: HELLO [u32 session | u16 index | u16 n].
   Data framing on each member: [u32 seq | u32 len | bytes]. *)
let hello_len = 8

let frame_hdr = 8

type member = {
  conn : Sysio.conn;
  pending : Streamq.t; (* unparsed inbound bytes *)
  mutable want : (int * int) option; (* parsed frame header: seq, len *)
}

type link = {
  lnode : Simnet.Node.t;
  members : member array;
  mutable vl : Vl.t option;
  mutable next_tx_seq : int;
  mutable rr : int; (* round-robin cursor *)
  mutable next_rx_seq : int;
  reorder : (int, Bytebuf.t) Hashtbl.t;
  rx : Streamq.t;
  mutable closed : bool;
  mutable peer_closed_members : int;
  mutable rx_paused : bool;
      (* member draining parked: reassembled bytes over the high
         watermark. Unread bytes stay in each member's TCP receive queue,
         so every member's advertised window closes — backpressure across
         all stripes at once. *)
}

let notify l ev = match l.vl with Some vl -> Vl.notify vl ev | None -> ()

let trace_flow l action =
  if Trace.on () then
    Trace.instant l.lnode
      (Padico_obs.Event.Flow
         { action; place = driver_name; bytes = Streamq.length l.rx })

let deliver_in_order l =
  let progress = ref true in
  while !progress do
    match Hashtbl.find_opt l.reorder l.next_rx_seq with
    | Some chunk ->
      Hashtbl.remove l.reorder l.next_rx_seq;
      trace_adapter l.lnode Padico_obs.Event.Unwrap (Bytebuf.length chunk);
      Streamq.push l.rx chunk;
      l.next_rx_seq <- l.next_rx_seq + 1
    | None -> progress := false
  done

(* Parse complete frames buffered on one member. *)
let parse_member l m =
  let made_data = ref false in
  let continue = ref true in
  while !continue do
    match m.want with
    | None ->
      if Streamq.length m.pending >= frame_hdr then begin
        let hdr = Streamq.pop_exact m.pending frame_hdr in
        m.want <- Some (Bytebuf.get_u32 hdr 0, Bytebuf.get_u32 hdr 4)
      end
      else continue := false
    | Some (seq, len) ->
      if Streamq.length m.pending >= len then begin
        let body = Streamq.pop_exact m.pending len in
        m.want <- None;
        Hashtbl.replace l.reorder seq body;
        made_data := true
      end
      else continue := false
  done;
  if !made_data then begin
    deliver_in_order l;
    if not (Streamq.is_empty l.rx) then notify l Vl.Readable
  end

let drain_member l m =
  if Streamq.above_high l.rx then begin
    if not l.rx_paused then begin
      l.rx_paused <- true;
      trace_flow l "pause"
    end
  end
  else begin
    let rec drain () =
      match Sysio.read m.conn ~max:65_536 with
      | Some data ->
        Streamq.push m.pending data;
        drain ()
      | None -> ()
    in
    drain ();
    parse_member l m
  end

let resume_members l =
  if l.rx_paused && Streamq.below_low l.rx then begin
    l.rx_paused <- false;
    trace_flow l "resume";
    Array.iter (fun m -> drain_member l m) l.members
  end

let member_event l m = function
  | Tcp.Readable -> drain_member l m
  | Tcp.Writable -> notify l Vl.Writable
  | Tcp.Peer_closed ->
    l.peer_closed_members <- l.peer_closed_members + 1;
    if l.peer_closed_members = Array.length l.members then
      notify l Vl.Peer_closed
  | Tcp.Reset -> notify l (Vl.Failed "stream member reset")
  | Tcp.Established -> ()

let default_rx_high = 262_144

let make_link lnode members =
  { lnode; members; vl = None; next_tx_seq = 0; rr = 0; next_rx_seq = 0;
    reorder = Hashtbl.create 64;
    rx = Streamq.create ~high:default_rx_high ~low:(default_rx_high / 4) ();
    closed = false; peer_closed_members = 0; rx_paused = false }

let aggregate_write_space l =
  Array.fold_left
    (fun acc m -> acc + max 0 (Sysio.write_space m.conn - frame_hdr))
    0 l.members

let ops l =
  { Vl.o_write =
      (fun buf ->
         if l.closed then 0
         else begin
           (* Stripe in blocks, round-robin across members with space: the
              aggregate of n congestion windows is the point. *)
           let total = Bytebuf.length buf in
           trace_adapter l.lnode Padico_obs.Event.Wrap total;
           let sent = ref 0 in
           let stalled = ref 0 in
           let n = Array.length l.members in
           while !sent < total && !stalled < n do
             let m = l.members.(l.rr) in
             l.rr <- (l.rr + 1) mod n;
             let block = min default_block (total - !sent) in
             if Sysio.write_space m.conn >= block + frame_hdr then begin
               stalled := 0;
               let hdr = Bytebuf.create frame_hdr in
               Bytebuf.set_u32 hdr 0 l.next_tx_seq;
               Bytebuf.set_u32 hdr 4 block;
               l.next_tx_seq <- l.next_tx_seq + 1;
               ignore (Sysio.write m.conn hdr);
               ignore (Sysio.write m.conn (Bytebuf.sub buf !sent block));
               sent := !sent + block
             end
             else incr stalled
           done;
           !sent
         end);
    o_read =
      (fun ~max ->
         let r = Streamq.pop l.rx ~max in
         resume_members l;
         r);
    o_readable = (fun () -> Streamq.length l.rx);
    o_write_space = (fun () -> if l.closed then 0 else aggregate_write_space l);
    o_close =
      (fun () ->
         l.closed <- true;
         Array.iter (fun m -> Sysio.close m.conn) l.members);
    o_driver = driver_name }

let connect sio stack ~dst ~port ~streams =
  if streams < 1 then invalid_arg "Vl_pstream.connect: streams must be >= 1";
  let vl = Vl.create (Sysio.stack_node stack) in
  let session =
    Hashtbl.hash (Simnet.Node.uid (Sysio.stack_node stack), dst, port, streams)
  in
  let established = ref 0 in
  let members : member option array = Array.make streams None in
  let link = ref None in
  for i = 0 to streams - 1 do
    (* No event fires synchronously inside connect: the member cell is
       always filled before its first callback runs. *)
    let conn =
      Sysio.connect sio stack ~dst ~port (fun conn ev ->
          match ev with
          | Tcp.Established ->
            let hello = Bytebuf.create hello_len in
            Bytebuf.set_u32 hello 0 session;
            Bytebuf.set_u16 hello 4 i;
            Bytebuf.set_u16 hello 6 streams;
            ignore (Sysio.write conn hello);
            incr established;
            if !established = streams then begin
              let ms =
                Array.map
                  (function Some m -> m | None -> assert false)
                  members
              in
              let l = make_link (Sysio.stack_node stack) ms in
              l.vl <- Some vl;
              link := Some l;
              Vl.attach_ops vl (ops l);
              Array.iter (fun m -> drain_member l m) ms
            end
          | ev ->
            (match (!link, members.(i)) with
             | Some l, Some m -> member_event l m ev
             | _, _ ->
               if ev = Tcp.Reset then
                 Vl.notify vl (Vl.Failed "stream member reset")))
    in
    members.(i) <- Some { conn; pending = Streamq.create (); want = None }
  done;
  vl

(* Server side: group incoming members by session id. *)
type pending_session = { mutable got : (int * Sysio.conn) list; mutable expected : int }

let listen sio stack ~port accept =
  let sessions : (int, pending_session) Hashtbl.t = Hashtbl.create 8 in
  Sysio.listen sio stack ~port (fun conn ->
      let hello = ref None in
      let handle ev =
          match (ev, !hello) with
          | Tcp.Readable, None when Sysio.readable_bytes conn >= hello_len ->
            (match Sysio.read conn ~max:hello_len with
             | Some h ->
               let session = Bytebuf.get_u32 h 0 in
               let index = Bytebuf.get_u16 h 4 in
               let n = Bytebuf.get_u16 h 6 in
               hello := Some (session, index);
               let ps =
                 match Hashtbl.find_opt sessions session with
                 | Some ps -> ps
                 | None ->
                   let ps = { got = []; expected = n } in
                   Hashtbl.replace sessions session ps;
                   ps
               in
               ps.got <- (index, conn) :: ps.got;
               if List.length ps.got = ps.expected then begin
                 Hashtbl.remove sessions session;
                 let sorted =
                   List.sort (fun (a, _) (b, _) -> compare a b) ps.got
                 in
                 let ms =
                   Array.of_list
                     (List.map
                        (fun (_, c) ->
                           { conn = c; pending = Streamq.create ();
                             want = None })
                        sorted)
                 in
                 let l = make_link (Sysio.stack_node stack) ms in
                 let vl = Vl.create_connected (Sysio.stack_node stack) (ops l) in
                 l.vl <- Some vl;
                 Array.iter
                   (fun m -> Sysio.watch sio m.conn (member_event l m))
                   ms;
                 (* Data may already sit behind the HELLOs. *)
                 Array.iter (fun m -> drain_member l m) ms;
                 (* A member FIN processed while its watch still pointed
                    at the HELLO parser was ignored there; [Peer_closed]
                    fires exactly once, so count the missed edges now or
                    the bundle never reports peer death. *)
                 Array.iter
                   (fun m ->
                      if Sysio.peer_closed m.conn then
                        member_event l m Tcp.Peer_closed)
                   ms;
                 accept vl
               end
             | None -> ())
          | _ -> ()
      in
      Sysio.watch sio conn handle;
      (* The accept callback is dispatched through the arbitration core,
         so the HELLO's [Readable] edge may have fired before the watch
         was registered. Poll once: a bundle must form even if the peer
         sends nothing after its HELLOs. *)
      if Sysio.readable_bytes conn >= hello_len then handle Tcp.Readable)
