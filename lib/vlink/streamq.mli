(** In-memory byte-stream queue shared by memory-backed VLink drivers
    (MadIO, loopback, parallel streams, AdOC, VRP). Chunks in, bounded
    byte reads out, without copying.

    A queue optionally carries high/low watermarks used by flow control:
    producers should stop pushing once [above_high] and may resume once
    [below_low]. The watermarks are advisory — [push] never refuses data,
    so a producer that ignores [writable] still works (just unbounded),
    and in-flight bytes that arrive after the high watermark trips are
    never dropped. *)

type t

val create : ?high:int -> ?low:int -> unit -> t
(** [create ?high ?low ()] — [high] is the high watermark in bytes
    (default: unbounded, [max_int]); [low] the low watermark (default
    [high / 2] when [high] is given, else unbounded). Raises
    [Invalid_argument] unless [0 <= low <= high]. *)

val push : t -> Engine.Bytebuf.t -> unit
(** Append a chunk. Zero-length chunks are ignored (they carry no bytes
    and would otherwise produce zero-length pops). Never blocks or drops,
    even above the high watermark. *)

val pop : t -> max:int -> Engine.Bytebuf.t option
(** Up to [max] bytes; [None] when the queue is empty or [max <= 0].
    Single-chunk pops are no-copy. *)

val pop_exact : t -> int -> Engine.Bytebuf.t
(** [pop_exact t n] returns exactly [n] bytes, coalescing across chunk
    boundaries (no-copy when the front chunk suffices). [pop_exact t 0]
    returns an empty buffer and consumes nothing. Raises
    [Invalid_argument] when [n < 0] or fewer than [n] bytes are queued. *)

val length : t -> int
val is_empty : t -> bool

val peak : t -> int
(** Highest [length] ever observed — the bounded-memory witness. *)

val high_watermark : t -> int
val low_watermark : t -> int

val above_high : t -> bool
(** [length >= high]: producers should pause. *)

val below_low : t -> bool
(** [length <= low]: paused producers may resume. *)

val writable : t -> bool
(** [length < high]: there is room for more without tripping the
    high watermark. *)
