(** VRP VLink adapter: loss-tolerant streaming over UDP on lossy WANs.

    The byte stream delivered on the receiving side may contain bounded
    gaps (the tolerated loss); chunks arrive in sending order with missing
    chunks skipped. Suited to media/visualization streams, not to
    protocols that need exact bytes. *)

val connect :
  ?sndbuf:int ->
  Netaccess.Sysio.t ->
  Drivers.Udp.t ->
  dst:int ->
  port:int ->
  tolerance:float ->
  rate_bps:float ->
  Vl.t
(** Datagram transport: the descriptor is connected immediately.

    The sender is rate-paced, so it — not the wire — is the bottleneck:
    at most [sndbuf] bytes (default 256 KiB) sit unpaced before writes
    stop being accepted ([o_write] returns 0, [write_space] reaches 0);
    a [Writable] event fires when the pacer drains. *)

val listen :
  Netaccess.Sysio.t ->
  Drivers.Udp.t ->
  port:int ->
  tolerance:float ->
  (Vl.t -> unit) ->
  unit
(** One stream per port; the acceptor fires as soon as the receiver is set
    up (datagram semantics: there is no handshake to wait for). *)

val sender_of : Vl.t -> Methods.Vrp.sender option
(** Access protocol statistics of a connected sender descriptor. *)

val receiver_of : Vl.t -> Methods.Vrp.receiver option

val driver_name : string
