type record = {
  ts : int;
  dur : int;
  node : string;
  seq : int;
  ev : Event.t;
}

type state = {
  mutable buf : record option array;
  mutable head : int;  (* next write position *)
  mutable written : int;  (* total records ever written since clear *)
  mutable seq : int;
  mutable enabled : bool;
}

let default_capacity = 65_536

let st =
  { buf = [||]; head = 0; written = 0; seq = 0; enabled = false }

(* The ring is process-global; in a sharded run every shard records into
   it, so writes are serialized. [on] stays a bare flag read — the
   disabled hot path keeps its measured zero overhead, and enabling is a
   setup-time action. Record order across shards follows lock-acquisition
   order (compare exported traces by (ts, node), not by seq). *)
let lock = Mutex.create ()

let on () = st.enabled

let clear () =
  Mutex.protect lock (fun () ->
      Array.fill st.buf 0 (Array.length st.buf) None;
      st.head <- 0;
      st.written <- 0;
      st.seq <- 0)

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity must be >= 1";
  if Array.length st.buf <> capacity then st.buf <- Array.make capacity None;
  clear ();
  st.enabled <- true

let disable () = st.enabled <- false

let capacity () = Array.length st.buf

let add ~ts ~dur ~node ev =
  Mutex.protect lock (fun () ->
      let cap = Array.length st.buf in
      if cap > 0 then begin
        let seq = st.seq in
        st.seq <- seq + 1;
        st.buf.(st.head) <- Some { ts; dur; node; seq; ev };
        st.head <- (st.head + 1) mod cap;
        st.written <- st.written + 1
      end)

let now node = Engine.Clock.now (Simnet.Node.clock node)

let instant node ev =
  add ~ts:(now node) ~dur:(-1) ~node:(Simnet.Node.name node) ev

let complete node ~since ev =
  let t = now node in
  let since = if since > t then t else since in
  add ~ts:since ~dur:(t - since) ~node:(Simnet.Node.name node) ev

type span = No_span | Span of { sp_node : Simnet.Node.t; sp_ts : int; sp_ev : Event.t }

let null_span = No_span

let begin_span node ev =
  if st.enabled then Span { sp_node = node; sp_ts = now node; sp_ev = ev }
  else No_span

let end_span = function
  | No_span -> ()
  | Span { sp_node; sp_ts; sp_ev } ->
    if st.enabled then complete sp_node ~since:sp_ts sp_ev

let length () = Stdlib.min st.written (Array.length st.buf)

let dropped () = Stdlib.max 0 (st.written - Array.length st.buf)

let records () =
  Mutex.protect lock (fun () ->
      let cap = Array.length st.buf in
      if cap = 0 || st.written = 0 then []
      else begin
        let len = Stdlib.min st.written cap in
        (* Oldest record: at 0 until the ring wraps, then at [head]. *)
        let start = if st.written <= cap then 0 else st.head in
        List.init len (fun i ->
            match st.buf.((start + i) mod cap) with
            | Some r -> r
            | None -> assert false)
      end)
