(** Typed trace-event taxonomy covering the layers of the stack.

    Arbitration events come from the NetAccess core (the single per-node
    dispatcher) and its two subsystems; abstraction events from the VLink /
    Circuit APIs and the method adapters stacked on them; selection events
    from the strategy selector; resilience events from the fault injector
    (Padico_fault) and the failover machinery built on it. The taxonomy is
    closed on purpose: every event an exporter can meet is listed here, so
    exporters never need a fallback case and traces stay comparable across
    runs. *)

type layer = Arbitration | Abstraction | Selection | Resilience

type vl_op = Read | Write

type adapter_dir = Wrap | Unwrap

type t =
  (* -- arbitration (NetAccess) -- *)
  | Dispatch of { kind : string; queued_ns : int }
      (** One work item left the [kind] ("madio" | "sysio") queue after
          waiting [queued_ns] of virtual time. Rendered as a span covering
          the queueing interval. *)
  | Poll of { kind : string }
      (** A polling pass over a subsystem (SysIO select()-like scan). *)
  | Header of { lchannel : int; bytes : int; combined : bool }
      (** MadIO multiplexing header emission: combined with the payload
          message, or sent as a separate message (the ablation). *)
  | Madio_recv of { lchannel : int; bytes : int }
      (** A MadIO message reassembled and handed to a logical channel. *)
  | Sysio_event of { event : string }
      (** A socket event routed through the arbitrated receipt loop. *)
  (* -- abstraction (VLink / Circuit) -- *)
  | Vl_connect of { driver : string }  (** Descriptor bound to a driver. *)
  | Vl_post of { op : vl_op; bytes : int }  (** Read/write request posted. *)
  | Vl_complete of { op : vl_op; result : string; bytes : int }
      (** Request completion ("done" | "eof" | "error"). *)
  | Ct_pack of { circuit : string; dst : int; bytes : int }
      (** Circuit message packed and sent towards rank [dst]. *)
  | Ct_recv of { circuit : string; src : int; bytes : int }
      (** Circuit message delivered from rank [src]. *)
  | Adapter of { adapter : string; dir : adapter_dir; bytes : int }
      (** A method adapter (adoc / crypto / vrp / pstream) transformed
          [bytes] of payload on the way down ([Wrap]) or up ([Unwrap]). *)
  | Flow of { action : string; place : string; bytes : int }
      (** Flow-control transition at [place] (a queue, channel or link
          name): [action] is "pause" | "resume" | "credit.stall" |
          "credit.grant" | "defer" | "shed" | "window.full"; [bytes] the
          queue depth or credit amount involved. *)
  (* -- selection -- *)
  | Choice of {
      src : string;
      dst : string;
      driver : string;
      rule : string;
      streams : int;
      adoc : bool;
      crypto : bool;
    }
      (** The selector picked [driver] for the [src]->[dst] link because
          [rule] fired ("loopback" | "forced" | "san" | "vrp-lossy" |
          "pstream-wan" | "default"). *)
  (* -- resilience (fault injection / recovery) -- *)
  | Fault of { action : string; target : string }
      (** The injector fired a plan event ([action] is
          [Plan.action_name], [target] the link/node/group). *)
  | Vl_timeout of { op : vl_op; after_ns : int }
      (** A posted VLink request hit its deadline and completed with
          [Error "timeout"]. *)
  | Retry of { attempt : int; delay_ns : int; target : string }
      (** A reconnect attempt was scheduled after a backoff delay. *)
  | Failover of {
      from_ : string;
      to_ : string;
      retries : int;
      downtime_ns : int;
    }
      (** A resilient link re-established on a different adapter stack:
          the switch, the retry count and the measured downtime. *)
  | Sched of { action : string; subsystem : string; value : int }
      (** Adaptive arbitration decision: [action] is "scan" (a charged
          idle SysIO scan), "backoff" (idle-scan gap doubled), "boost"
          (MadIO latency-priority quantum boost) or "quantum" (EWMA-driven
          quantum change); [value] the new gap/quantum. Only the adaptive
          policy emits these — the static policy's event stream is
          byte-identical to pre-adaptive builds. *)
  | Agg of { action : string; lchannel : int; msgs : int; bytes : int }
      (** MadIO small-message aggregation: [action] is "queue" (message
          coalesced into the pending batch) or "flush.<reason>" with
          reason "budget" | "size" | "large" | "credit" | "explicit";
          [msgs]/[bytes] the batch contents. *)
  | Coll_stage of {
      group : string;
      op : string;
      stage : string;
      level : string;
      bytes : int;
    }
      (** One per-member stage of a collective operation on [group]:
          [op] is the operation ("barrier" | "bcast" | ...), [stage] is
          "up" (towards the root) or "down" (away from it), [level] the
          topology level the member's sends travel at ("san" | "lan" |
          "wan", or "flat" for the topology-blind strategy); [bytes] the
          payload carried. Rendered as a span covering the stage. *)
  | Coll_wan of { group : string; op : string; dst : int; bytes : int }
      (** A collective message crossed a WAN boundary (source and
          destination ranks live in different Netdb clusters). *)
  | Detect of { action : string; peer : int; phi_milli : int }
      (** Failure-detector transition about [peer]: [action] is "suspect"
          (phi crossed the suspicion threshold), "refute" (a suspected peer
          was heard from again), "confirm" (phi crossed the confirmation
          threshold — the peer is declared dead) or "link-dead" (the
          transport reported the peer's connection reset, confirming it
          immediately). [phi_milli] is the accrued suspicion level x1000 at
          the transition (-1 when confirmed by transport death). *)
  | Member of { group : string; action : string; rank : int; epoch : int }
      (** Self-healing group-membership transition on [group]: [action] is
          "evict" (rank confirmed dead and removed from the membership),
          "epoch" (the member moved to membership epoch [epoch]) or
          "restart" (the in-flight collective was rewound and retried over
          the shrunken membership). *)

val layer : t -> layer

val layer_name : layer -> string
(** "arbitration" | "abstraction" | "selection" | "resilience" — the Chrome
    trace [cat]. *)

val name : t -> string
(** Stable dotted event name, e.g. ["na.dispatch"], ["vl.post"]. *)

type arg = I of int | S of string | B of bool

val args : t -> (string * arg) list
(** Structured payload of the event, in a fixed order. *)

val pp : Format.formatter -> t -> unit
