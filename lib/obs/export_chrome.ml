let us_of_ns ns = float_of_int ns /. 1000.0

let arg_json = function
  | Event.I i -> Json.Int i
  | Event.S s -> Json.Str s
  | Event.B b -> Json.Bool b

(* pids by order of first appearance: stable across identical runs. *)
let assign_pids records =
  let pids = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (r : Trace.record) ->
       if not (Hashtbl.mem pids r.Trace.node) then begin
         Hashtbl.replace pids r.Trace.node (Hashtbl.length pids + 1);
         order := r.Trace.node :: !order
       end)
    records;
  (pids, List.rev !order)

let event_json pids (r : Trace.record) =
  let pid = Hashtbl.find pids r.Trace.node in
  let common =
    [ ("name", Json.Str (Event.name r.ev));
      ("cat", Json.Str (Event.layer_name (Event.layer r.ev)));
      ("ts", Json.Float (us_of_ns r.ts));
      ("pid", Json.Int pid);
      ("tid", Json.Int 1) ]
  in
  let shape =
    if r.dur >= 0 then
      [ ("ph", Json.Str "X"); ("dur", Json.Float (us_of_ns r.dur)) ]
    else [ ("ph", Json.Str "i"); ("s", Json.Str "t") ]
  in
  let args =
    ("args",
     Json.Obj
       (("seq", Json.Int r.seq)
        :: List.map (fun (k, v) -> (k, arg_json v)) (Event.args r.ev)))
  in
  Json.Obj (common @ shape @ [ args ])

let meta_json pids name =
  Json.Obj
    [ ("name", Json.Str "process_name");
      ("ph", Json.Str "M");
      ("pid", Json.Int (Hashtbl.find pids name));
      ("tid", Json.Int 1);
      ("args", Json.Obj [ ("name", Json.Str name) ]) ]

let json ?records () =
  let records =
    match records with Some r -> r | None -> Trace.records ()
  in
  let pids, order = assign_pids records in
  let metas = List.map (meta_json pids) order in
  let events = List.map (event_json pids) records in
  Json.Obj
    [ ("traceEvents", Json.List (metas @ events));
      ("displayTimeUnit", Json.Str "ns") ]

let to_string ?records () = Json.to_string (json ?records ())

let write_file path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ()))
