type layer = Arbitration | Abstraction | Selection | Resilience

type vl_op = Read | Write

type adapter_dir = Wrap | Unwrap

type t =
  | Dispatch of { kind : string; queued_ns : int }
  | Poll of { kind : string }
  | Header of { lchannel : int; bytes : int; combined : bool }
  | Madio_recv of { lchannel : int; bytes : int }
  | Sysio_event of { event : string }
  | Vl_connect of { driver : string }
  | Vl_post of { op : vl_op; bytes : int }
  | Vl_complete of { op : vl_op; result : string; bytes : int }
  | Ct_pack of { circuit : string; dst : int; bytes : int }
  | Ct_recv of { circuit : string; src : int; bytes : int }
  | Adapter of { adapter : string; dir : adapter_dir; bytes : int }
  | Flow of { action : string; place : string; bytes : int }
  | Choice of {
      src : string;
      dst : string;
      driver : string;
      rule : string;
      streams : int;
      adoc : bool;
      crypto : bool;
    }
  | Fault of { action : string; target : string }
  | Vl_timeout of { op : vl_op; after_ns : int }
  | Retry of { attempt : int; delay_ns : int; target : string }
  | Failover of {
      from_ : string;
      to_ : string;
      retries : int;
      downtime_ns : int;
    }
  | Sched of { action : string; subsystem : string; value : int }
  | Agg of { action : string; lchannel : int; msgs : int; bytes : int }
  | Coll_stage of {
      group : string;
      op : string;
      stage : string;
      level : string;
      bytes : int;
    }
  | Coll_wan of { group : string; op : string; dst : int; bytes : int }
  | Detect of { action : string; peer : int; phi_milli : int }
  | Member of { group : string; action : string; rank : int; epoch : int }

let layer = function
  | Dispatch _ | Poll _ | Header _ | Madio_recv _ | Sysio_event _ ->
    Arbitration
  | Vl_connect _ | Vl_post _ | Vl_complete _ | Ct_pack _ | Ct_recv _
  | Adapter _ | Coll_stage _ | Coll_wan _ ->
    Abstraction
  | Flow _ | Sched _ | Agg _ -> Arbitration
  | Choice _ -> Selection
  | Fault _ | Vl_timeout _ | Retry _ | Failover _ | Detect _ | Member _ ->
    Resilience

let layer_name = function
  | Arbitration -> "arbitration"
  | Abstraction -> "abstraction"
  | Selection -> "selection"
  | Resilience -> "resilience"

let op_name = function Read -> "read" | Write -> "write"

let dir_name = function Wrap -> "wrap" | Unwrap -> "unwrap"

let name = function
  | Dispatch { kind; _ } -> "na.dispatch." ^ kind
  | Poll { kind; _ } -> "na.poll." ^ kind
  | Header _ -> "madio.header"
  | Madio_recv _ -> "madio.recv"
  | Sysio_event _ -> "sysio.event"
  | Vl_connect _ -> "vl.connect"
  | Vl_post { op; _ } -> "vl.post." ^ op_name op
  | Vl_complete { op; _ } -> "vl.complete." ^ op_name op
  | Ct_pack _ -> "ct.pack"
  | Ct_recv _ -> "ct.recv"
  | Adapter { adapter; dir; _ } -> adapter ^ "." ^ dir_name dir
  | Flow { action; _ } -> "flow." ^ action
  | Choice _ -> "selector.choice"
  | Fault { action; _ } -> "fault." ^ action
  | Vl_timeout { op; _ } -> "vl.timeout." ^ op_name op
  | Retry _ -> "resilience.retry"
  | Failover _ -> "resilience.failover"
  | Sched { action; _ } -> "sched." ^ action
  | Agg { action; _ } -> "agg." ^ action
  | Coll_stage _ -> "coll.stage"
  | Coll_wan _ -> "coll.wan"
  | Detect { action; _ } -> "detect." ^ action
  | Member { action; _ } -> "member." ^ action

type arg = I of int | S of string | B of bool

let args = function
  | Dispatch { kind; queued_ns } ->
    [ ("kind", S kind); ("queued_ns", I queued_ns) ]
  | Poll { kind } -> [ ("kind", S kind) ]
  | Header { lchannel; bytes; combined } ->
    [ ("lchannel", I lchannel); ("bytes", I bytes); ("combined", B combined) ]
  | Madio_recv { lchannel; bytes } ->
    [ ("lchannel", I lchannel); ("bytes", I bytes) ]
  | Sysio_event { event } -> [ ("event", S event) ]
  | Vl_connect { driver } -> [ ("driver", S driver) ]
  | Vl_post { op; bytes } -> [ ("op", S (op_name op)); ("bytes", I bytes) ]
  | Vl_complete { op; result; bytes } ->
    [ ("op", S (op_name op)); ("result", S result); ("bytes", I bytes) ]
  | Ct_pack { circuit; dst; bytes } ->
    [ ("circuit", S circuit); ("dst", I dst); ("bytes", I bytes) ]
  | Ct_recv { circuit; src; bytes } ->
    [ ("circuit", S circuit); ("src", I src); ("bytes", I bytes) ]
  | Adapter { adapter; dir; bytes } ->
    [ ("adapter", S adapter); ("dir", S (dir_name dir)); ("bytes", I bytes) ]
  | Choice { src; dst; driver; rule; streams; adoc; crypto } ->
    [ ("src", S src); ("dst", S dst); ("driver", S driver);
      ("rule", S rule); ("streams", I streams); ("adoc", B adoc);
      ("crypto", B crypto) ]
  | Flow { action; place; bytes } ->
    [ ("action", S action); ("place", S place); ("bytes", I bytes) ]
  | Fault { action; target } -> [ ("action", S action); ("target", S target) ]
  | Vl_timeout { op; after_ns } ->
    [ ("op", S (op_name op)); ("after_ns", I after_ns) ]
  | Retry { attempt; delay_ns; target } ->
    [ ("attempt", I attempt); ("delay_ns", I delay_ns); ("target", S target) ]
  | Failover { from_; to_; retries; downtime_ns } ->
    [ ("from", S from_); ("to", S to_); ("retries", I retries);
      ("downtime_ns", I downtime_ns) ]
  | Sched { action = _; subsystem; value } ->
    [ ("subsystem", S subsystem); ("value", I value) ]
  | Agg { action = _; lchannel; msgs; bytes } ->
    [ ("lchannel", I lchannel); ("msgs", I msgs); ("bytes", I bytes) ]
  | Coll_stage { group; op; stage; level; bytes } ->
    [ ("group", S group); ("op", S op); ("stage", S stage);
      ("level", S level); ("bytes", I bytes) ]
  | Coll_wan { group; op; dst; bytes } ->
    [ ("group", S group); ("op", S op); ("dst", I dst); ("bytes", I bytes) ]
  | Detect { action = _; peer; phi_milli } ->
    [ ("peer", I peer); ("phi_milli", I phi_milli) ]
  | Member { group; action = _; rank; epoch } ->
    [ ("group", S group); ("rank", I rank); ("epoch", I epoch) ]

let pp fmt t =
  Format.fprintf fmt "%s[%s" (name t) (layer_name (layer t));
  List.iter
    (fun (k, v) ->
       match v with
       | I i -> Format.fprintf fmt " %s=%d" k i
       | S s -> Format.fprintf fmt " %s=%s" k s
       | B b -> Format.fprintf fmt " %s=%b" k b)
    (args t);
  Format.fprintf fmt "]"
