(** Process-wide metrics registry: named counters, summaries and histograms
    with a node / link / global scope, enumerable for dumping.

    This unifies the counters that used to live as loose mutable fields
    scattered through the stack (MadIO messages sent, SysIO events
    dispatched, circuit traffic, dispatcher queue waits): layers now create
    their instruments here, so one call ({!all}) can enumerate everything a
    run measured. The instruments themselves are the {!Engine.Stats}
    accumulators, so existing benchmark code keeps working on top.

    Two registration flavours:
    - [counter] (resp. [summary], [histogram]) is get-or-create: callers
      accumulate into a shared instrument — use for long-lived aggregates
      such as selector decision counts.
    - [fresh_counter] (&c.) always creates a new instrument and rebinds the
      name — use for per-instance state (a node's MadIO instance), so a
      fresh simulation starts its counts at zero while the registry always
      exposes the most recent instance. *)

type scope =
  | Global
  | Node of string  (** node name *)
  | Link of string  (** "src->dst" or segment name *)

type value =
  | Counter of Engine.Stats.Counter.t
  | Summary of Engine.Stats.Summary.t
  | Histogram of Engine.Stats.Histogram.t
  | Gauge of (unit -> float)
      (** Sampled on enumeration: the callback reads live state (queue
          depth, credit balance) so the registry never holds stale copies. *)

val scope_name : scope -> string

val counter : scope -> string -> Engine.Stats.Counter.t
val summary : scope -> string -> Engine.Stats.Summary.t
val histogram : scope -> string -> Engine.Stats.Histogram.t

val fresh_counter : scope -> string -> Engine.Stats.Counter.t
val fresh_summary : scope -> string -> Engine.Stats.Summary.t
val fresh_histogram : scope -> string -> Engine.Stats.Histogram.t

val gauge : scope -> string -> (unit -> float) -> unit
(** Register (or rebind) a sampled gauge. Always-rebind semantics like the
    [fresh_*] family: a new simulation's instance shadows the previous one. *)

val find : scope -> string -> value option

val all : unit -> (scope * string * value) list
(** Every registered instrument, sorted (Global, then nodes, then links;
    alphabetical within a scope) so enumeration order is deterministic. *)

val reset : unit -> unit
(** Forget every binding. Instruments already held by callers keep working
    but are no longer enumerated. *)
