module Stats = Engine.Stats

let pp_value fmt = function
  | Metrics.Counter c -> Format.fprintf fmt "%d" (Stats.Counter.value c)
  | Metrics.Summary s ->
    if Stats.Summary.n s = 0 then Format.fprintf fmt "(empty)"
    else
      Format.fprintf fmt "n=%d mean=%.1f min=%.1f max=%.1f"
        (Stats.Summary.n s) (Stats.Summary.mean s) (Stats.Summary.min s)
        (Stats.Summary.max s)
  | Metrics.Histogram h ->
    if Stats.Histogram.count h = 0 then Format.fprintf fmt "(empty)"
    else
      Format.fprintf fmt "n=%d p50<=%d p99<=%d" (Stats.Histogram.count h)
        (Stats.Histogram.percentile h 0.5)
        (Stats.Histogram.percentile h 0.99)
  | Metrics.Gauge f ->
    let v = f () in
    if Float.is_integer v && Float.abs v < 1e15 then
      Format.fprintf fmt "%.0f" v
    else Format.fprintf fmt "%g" v

let pp_metrics fmt () =
  let items = Metrics.all () in
  Format.fprintf fmt "@[<v>metrics (%d registered)@," (List.length items);
  let last_scope = ref None in
  List.iter
    (fun (scope, name, v) ->
       let sname = Metrics.scope_name scope in
       if !last_scope <> Some sname then begin
         Format.fprintf fmt "  %s@," sname;
         last_scope := Some sname
       end;
       Format.fprintf fmt "    %-32s %a@," name pp_value v)
    items;
  Format.fprintf fmt "@]"

let pp_trace fmt () =
  let records = Trace.records () in
  (* (node, layer, name) -> count, insertion-ordered per first appearance. *)
  let counts : (string * string * string, int ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let order = ref [] in
  List.iter
    (fun (r : Trace.record) ->
       let key =
         ( r.Trace.node,
           Event.layer_name (Event.layer r.ev),
           Event.name r.ev )
       in
       match Hashtbl.find_opt counts key with
       | Some c -> incr c
       | None ->
         Hashtbl.replace counts key (ref 1);
         order := key :: !order)
    records;
  Format.fprintf fmt "@[<v>trace: %d records retained, %d dropped@,"
    (Trace.length ()) (Trace.dropped ());
  List.iter
    (fun ((node, layer, name) as key) ->
       Format.fprintf fmt "  %-10s %-12s %-24s %d@," node layer name
         !(Hashtbl.find counts key))
    (List.rev !order);
  Format.fprintf fmt "@]"

let pp fmt () =
  Format.fprintf fmt "%a@.%a@." pp_metrics () pp_trace ()
