(** Chrome [trace_event] exporter.

    Produces the JSON object format ({["{\"traceEvents\": [...]}"]})
    loadable in [about:tracing] and {{:https://ui.perfetto.dev}Perfetto}.
    Each simulated node becomes a process (metadata [process_name] event);
    spans are "X" complete events, point events are "i" instants.
    Timestamps are virtual-time microseconds with nanosecond precision.

    Process ids are assigned by first appearance of a node in the record
    stream, so identical runs export byte-identical JSON. *)

val json : ?records:Trace.record list -> unit -> Json.t
(** Build the trace tree; [records] defaults to {!Trace.records}[ ()]. *)

val to_string : ?records:Trace.record list -> unit -> string

val write_file : string -> unit
(** Dump {!to_string} of the current trace buffer to a file. *)
