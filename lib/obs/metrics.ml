module Stats = Engine.Stats

type scope = Global | Node of string | Link of string

type value =
  | Counter of Stats.Counter.t
  | Summary of Stats.Summary.t
  | Histogram of Stats.Histogram.t
  | Gauge of (unit -> float)

let scope_name = function
  | Global -> "global"
  | Node n -> "node:" ^ n
  | Link l -> "link:" ^ l

(* Registration is mutex-guarded: metric objects are mostly created at
   setup, but sharded runs lazily register per-link/per-node metrics
   from worker domains. The returned counters/summaries themselves are
   not guarded — counters are atomic, summaries and histograms follow
   the owner-shard discipline (one writer). *)
let tbl : (string * string, value) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let () = Engine.Lifecycle.on_reset (fun () ->
    Mutex.protect lock (fun () -> Hashtbl.reset tbl))

let key scope name = (scope_name scope, name)

let find scope name =
  Mutex.protect lock (fun () -> Hashtbl.find_opt tbl (key scope name))

let get_or_create scope name ~wrong ~make ~unwrap =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt tbl (key scope name) with
      | Some v ->
        (match unwrap v with
         | Some x -> x
         | None ->
           invalid_arg
             (Printf.sprintf "Metrics: %s/%s already registered as a %s"
                (scope_name scope) name wrong))
      | None ->
        let x, v = make () in
        Hashtbl.replace tbl (key scope name) v;
        x)

let counter scope name =
  get_or_create scope name ~wrong:"non-counter"
    ~make:(fun () ->
        let c = Stats.Counter.create name in
        (c, Counter c))
    ~unwrap:(function Counter c -> Some c | _ -> None)

let summary scope name =
  get_or_create scope name ~wrong:"non-summary"
    ~make:(fun () ->
        let s = Stats.Summary.create () in
        (s, Summary s))
    ~unwrap:(function Summary s -> Some s | _ -> None)

let histogram scope name =
  get_or_create scope name ~wrong:"non-histogram"
    ~make:(fun () ->
        let h = Stats.Histogram.create () in
        (h, Histogram h))
    ~unwrap:(function Histogram h -> Some h | _ -> None)

let fresh_counter scope name =
  let c = Stats.Counter.create name in
  Mutex.protect lock (fun () -> Hashtbl.replace tbl (key scope name) (Counter c));
  c

let fresh_summary scope name =
  let s = Stats.Summary.create () in
  Mutex.protect lock (fun () -> Hashtbl.replace tbl (key scope name) (Summary s));
  s

let fresh_histogram scope name =
  let h = Stats.Histogram.create () in
  Mutex.protect lock (fun () ->
      Hashtbl.replace tbl (key scope name) (Histogram h));
  h

let gauge scope name f =
  Mutex.protect lock (fun () -> Hashtbl.replace tbl (key scope name) (Gauge f))

let scope_rank s =
  (* Global first, then nodes, then links. *)
  if s = "global" then 0
  else if String.length s >= 5 && String.sub s 0 5 = "node:" then 1
  else 2

let all () =
  let items =
    Mutex.protect lock (fun () ->
        Hashtbl.fold
          (fun (sname, name) v acc -> (sname, name, v) :: acc)
          tbl [])
  in
  let cmp (s1, n1, _) (s2, n2, _) =
    match compare (scope_rank s1) (scope_rank s2) with
    | 0 ->
      (match compare s1 s2 with 0 -> compare n1 n2 | c -> c)
    | c -> c
  in
  let items = List.sort cmp items in
  List.map
    (fun (sname, name, v) ->
       let scope =
         if sname = "global" then Global
         else
           match String.index_opt sname ':' with
           | Some i ->
             let tag = String.sub sname 0 i in
             let rest =
               String.sub sname (i + 1) (String.length sname - i - 1)
             in
             if tag = "node" then Node rest else Link rest
           | None -> Global
       in
       (scope, name, v))
    items

let reset () = Mutex.protect lock (fun () -> Hashtbl.reset tbl)
