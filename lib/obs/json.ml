type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape_to buf s
  | List l ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_char buf ',';
         to_buffer buf v)
      l;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         escape_to buf k;
         Buffer.add_char buf ':';
         to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---------- parser ---------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             try int_of_string ("0x" ^ hex)
             with _ -> fail "bad \\u escape"
           in
           (* Keep it simple: only BMP code points below 0x80 decode to a
              byte; others round-trip as '?'. The exporter never emits
              non-ASCII escapes. *)
           Buffer.add_char buf
             (if code < 0x80 then Char.chr code else '?');
           pos := !pos + 4
         | c -> fail (Printf.sprintf "bad escape %C" c));
        advance ();
        loop ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt tok with
       | Some f -> Float f
       | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (elems [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "at byte %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
