(** Human-readable dump of a run's observability state: the metrics registry
    grouped by scope, and a per-layer digest of the trace buffer. *)

val pp_metrics : Format.formatter -> unit -> unit
(** Table of every registered metric: counters as values, summaries as
    n/mean/min/max, histograms as count/p50/p99. *)

val pp_trace : Format.formatter -> unit -> unit
(** Per-node, per-event-name record counts plus buffer occupancy. *)

val pp : Format.formatter -> unit -> unit
(** Both sections. *)
