(** Structured trace ring buffer keyed on simulator virtual time.

    One process-wide buffer, disabled by default. The disabled fast path is
    a single branch: instrumentation sites guard event construction with
    [if Trace.on () then ...] so a disabled run pays one load+test and no
    allocation. Records carry virtual-time nanosecond timestamps taken from
    the node's simulator clock, so traces are deterministic: two identical
    runs produce identical traces.

    When the buffer is full the oldest records are overwritten and counted
    in {!dropped} — tracing never aborts or grows without bound. *)

type record = {
  ts : int;  (** virtual time, ns *)
  dur : int;  (** span duration in ns; [-1] for instant events *)
  node : string;  (** node name *)
  seq : int;  (** emission order, ties broken deterministically *)
  ev : Event.t;
}

val on : unit -> bool
(** The global enable flag — the only check on the disabled path. *)

val enable : ?capacity:int -> unit -> unit
(** Start tracing into a fresh ring buffer ([capacity] records,
    default 65536). Clears any previous records. *)

val disable : unit -> unit
(** Stop recording; the buffer keeps its records for export. *)

val clear : unit -> unit
(** Drop all records and reset the {!dropped} count. *)

val instant : Simnet.Node.t -> Event.t -> unit
(** Record a point event at the node's current virtual time. *)

val complete : Simnet.Node.t -> since:int -> Event.t -> unit
(** Record a span from absolute virtual time [since] to now (clamped to a
    non-negative duration). Used when the span's start was only known in
    hindsight, e.g. queue-wait intervals. *)

type span

val null_span : span
(** Inert span; ending it is a no-op. Returned when tracing is off. *)

val begin_span : Simnet.Node.t -> Event.t -> span

val end_span : span -> unit
(** Records a span from [begin_span]'s time to now. A span survives
    [disable]/[enable] windows: it is recorded only if tracing is on when it
    ends. *)

val records : unit -> record list
(** Chronological (= emission-order) list of retained records. *)

val length : unit -> int

val dropped : unit -> int
(** Records overwritten due to ring wraparound since the last [clear]. *)

val capacity : unit -> int
