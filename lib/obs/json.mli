(** Minimal JSON tree, printer and strict parser.

    Just enough for the Chrome [trace_event] exporter and for tests to parse
    exported traces back — not a general-purpose JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering with full string escaping. Floats are printed with
    enough digits to round-trip nanosecond-scale microsecond timestamps. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Strict parser for the subset emitted by {!to_string} plus whitespace.
    [Error msg] carries the byte offset of the failure. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to the first occurrence of [k]. *)
