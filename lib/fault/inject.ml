module Net = Simnet.Net
module Segment = Simnet.Segment
module Node = Simnet.Node
module Trace = Padico_obs.Trace
module Metrics = Padico_obs.Metrics

let log = Logs.Src.create "fault.inject"

module Log = (val Logs.src_log log : Logs.LOG)

type t = {
  net : Net.t;
  mutable fired : int;
  mutable pending : int;
}

(* ---------- name resolution (eager, so typos fail before the run) ---------- *)

let segment_by_name net name =
  match
    List.filter (fun s -> Segment.name s = name) (Net.segments net)
  with
  | [ s ] -> s
  | [] ->
    invalid_arg (Printf.sprintf "Fault plan: unknown link %S" name)
  | _ :: _ ->
    invalid_arg (Printf.sprintf "Fault plan: ambiguous link name %S" name)

let node_by_name net name =
  match List.find_opt (fun n -> Node.name n = name) (Net.nodes net) with
  | Some n -> n
  | None -> invalid_arg (Printf.sprintf "Fault plan: unknown node %S" name)

(* Deterministic trace anchor for link-scoped events. *)
let anchor_of_segment seg =
  match
    List.sort (fun a b -> compare (Node.id a) (Node.id b)) (Segment.nodes seg)
  with
  | n :: _ -> Some n
  | [] -> None

let first_node net =
  match Net.nodes net with n :: _ -> Some n | [] -> None

let record anchor ~action ~target =
  Engine.Stats.Counter.incr (Metrics.counter Metrics.Global "fault.injected");
  match anchor with
  | Some node when Trace.on () ->
    Trace.instant node (Padico_obs.Event.Fault { action; target })
  | _ -> ()

(* ---------- execution ---------- *)

let fire t anchor ~action ~target f =
  t.fired <- t.fired + 1;
  t.pending <- t.pending - 1;
  Log.debug (fun m -> m "fault: %s %s" action target);
  record anchor ~action ~target;
  f ()

let schedule t at_ns anchor ~action ~target f =
  t.pending <- t.pending + 1;
  Engine.Clock.at (Net.clock t.net) at_ns (fun () ->
      fire t anchor ~action ~target f)

let cross_blocks net ~group_a ~group_b =
  let a_nodes = List.map (node_by_name net) group_a in
  let b_nodes = List.map (node_by_name net) group_b in
  List.concat_map
    (fun seg ->
       List.concat_map
         (fun a ->
            List.filter_map
              (fun b ->
                 if Node.id a <> Node.id b && Segment.attached seg a
                    && Segment.attached seg b
                 then Some (seg, Node.id a, Node.id b)
                 else None)
              b_nodes)
         a_nodes)
    (Net.segments net)

let arm t ({ Plan.at_ns; action } : Plan.event) =
  let action_name = Plan.action_name action in
  let target = Plan.target_name action in
  match action with
  | Plan.Link_down link ->
    let seg = segment_by_name t.net link in
    schedule t at_ns (anchor_of_segment seg) ~action:action_name ~target
      (fun () -> Segment.set_down seg true)
  | Plan.Link_up link ->
    let seg = segment_by_name t.net link in
    schedule t at_ns (anchor_of_segment seg) ~action:action_name ~target
      (fun () -> Segment.set_down seg false)
  | Plan.Loss_burst { link; loss; duration_ns } ->
    let seg = segment_by_name t.net link in
    let anchor = anchor_of_segment seg in
    schedule t at_ns anchor ~action:action_name ~target (fun () ->
        Segment.set_extra_loss seg loss);
    (* Windows restore to clean rather than nest: when bursts overlap, the
       last window to end wins. *)
    schedule t (at_ns + duration_ns) anchor ~action:(action_name ^ "-end")
      ~target (fun () -> Segment.set_extra_loss seg 0.0)
  | Plan.Latency_spike { link; add_ns; duration_ns } ->
    let seg = segment_by_name t.net link in
    let anchor = anchor_of_segment seg in
    schedule t at_ns anchor ~action:action_name ~target (fun () ->
        Segment.set_extra_latency seg add_ns);
    schedule t (at_ns + duration_ns) anchor ~action:(action_name ^ "-end")
      ~target (fun () -> Segment.set_extra_latency seg 0)
  | Plan.Node_crash name ->
    let node = node_by_name t.net name in
    schedule t at_ns (Some node) ~action:action_name ~target (fun () ->
        Node.set_up node false)
  | Plan.Node_restart name ->
    let node = node_by_name t.net name in
    schedule t at_ns (Some node) ~action:action_name ~target (fun () ->
        Node.set_up node true)
  | Plan.Partition { group_a; group_b } ->
    let blocks = cross_blocks t.net ~group_a ~group_b in
    let anchor = Some (node_by_name t.net (List.hd group_a)) in
    schedule t at_ns anchor ~action:action_name ~target (fun () ->
        List.iter (fun (seg, a, b) -> Segment.block_pair seg a b) blocks)
  | Plan.Heal ->
    schedule t at_ns (first_node t.net) ~action:action_name ~target
      (fun () ->
         List.iter Segment.clear_blocked (Net.segments t.net))

let apply ?(base_ns = 0) net plan =
  let t = { net; fired = 0; pending = 0 } in
  let plan =
    if base_ns = 0 then plan
    else List.map (fun ev -> { ev with Plan.at_ns = ev.Plan.at_ns + base_ns }) plan
  in
  List.iter (arm t)
    (List.stable_sort
       (fun a b -> compare a.Plan.at_ns b.Plan.at_ns)
       plan);
  t

let fired t = t.fired

let pending t = t.pending
