(** A slotted timeout wheel over the virtual clock.

    Request deadlines are armed in huge numbers and almost always
    cancelled (the request completes first). Pushing each one into the
    simulator's event heap would grow it with dead entries; the wheel
    instead buckets timers into fixed-width slots and schedules {e one}
    simulator event per occupied slot. Cancellation is O(1) (flip a flag);
    a fired slot skips cancelled entries.

    Deadlines round {e up} to the slot boundary: a timeout fires at or
    slightly after the requested instant, never before — the right bias for
    "give up after at least this long". Within a slot, timers fire in
    (requested deadline, arm order), so the wheel preserves the relative
    firing order a per-timer heap would produce. *)

type t

type timer

val create_on : ?slot_ns:int -> Engine.Clock.t -> t
(** A fresh wheel over any {!Engine.Clock.t}; [slot_ns] (default 65536 ns
    ≈ 66 µs) is the firing granularity. Raises [Invalid_argument] when
    non-positive. On a wall clock, cancelling every timer of a slot also
    releases the slot's underlying OS timer so the reactor can quiesce;
    on the virtual clock the (no-op) slot event is left in the heap so
    simulated schedules stay byte-identical. *)

val create : ?slot_ns:int -> Engine.Sim.t -> t
(** [create_on] over the simulator's virtual clock. *)

val for_clock : Engine.Clock.t -> t
(** The per-clock shared wheel (created on first use with the default
    granularity). VLink request deadlines all go through this one. *)

val for_sim : Engine.Sim.t -> t
(** [for_clock (Sim.clock sim)]. *)

val arm : t -> after_ns:int -> (unit -> unit) -> timer
(** Schedule a callback at least [after_ns] from now ([after_ns] clamps
    to 0). *)

val cancel : timer -> unit
(** Idempotent; a cancelled timer never fires. *)

val pending : t -> int
(** Armed, not-yet-fired, not-cancelled timers. *)
