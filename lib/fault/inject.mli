(** Deterministic fault injection: arm a {!Plan.t} against a grid.

    [apply net plan] resolves every link / node name eagerly (so a typo
    fails before the run starts) and schedules each event on the net's
    virtual clock. Events mutate the {!Simnet.Segment} fault overlay and
    {!Simnet.Node} up-state; nothing else in the stack knows the injector
    exists. Windowed actions ([Loss_burst], [Latency_spike]) schedule their
    own restore event at [at_ns + duration_ns].

    Determinism: the injector draws no randomness, and fault-dropped frames
    consume none either (see {!Simnet.Segment.send}), so two runs with the
    same seed and the same plan are bit-identical — the property the
    determinism test and the E10 bench rely on.

    Every fired event is recorded as a [Padico_obs.Event.Fault] trace
    instant (anchored on the lowest-id node attached to the target, a
    deterministic choice) and counted in the global
    ["fault.injected"] metric. *)

type t

val apply : ?base_ns:int -> Simnet.Net.t -> Plan.t -> t
(** Raises [Invalid_argument] when a plan references an unknown link or
    node name. Segment names must be unambiguous within the plan's targets.
    [base_ns] (default 0) shifts every event: plans are authored relative
    to a reference point — e.g. session establishment, which on the host
    backend happens at an unpredictable wall-clock offset — and armed
    against the absolute clock. *)

val fired : t -> int
(** Number of plan events executed so far (restore events of windowed
    actions included). *)

val pending : t -> int
(** Scheduled events (including window restores) not yet executed. *)
