(** Typed fault plans: a schedule of events on the virtual clock.

    A plan is data — building one has no effect; {!Inject.apply} arms it
    against a {!Simnet.Net}. Links and nodes are referenced by name so plans
    can be written before (or independently of) topology construction, and
    round-trip through a line-oriented text format for the CLI:

    {v
    # comment; times accept ns / us / ms / s suffixes
    at 5ms   link-down san
    at 60ms  link-up san
    at 1ms   loss-burst wan 0.3 for 10ms
    at 1ms   latency-spike wan +8ms for 5ms
    at 2ms   crash b
    at 4ms   restart b
    at 2ms   partition a1,a2 | b1,b2
    at 6ms   heal
    v} *)

type action =
  | Link_down of string  (** carrier loss on the named segment *)
  | Link_up of string
  | Loss_burst of { link : string; loss : float; duration_ns : int }
      (** extra frame-loss probability for a window, then back to clean *)
  | Latency_spike of { link : string; add_ns : int; duration_ns : int }
      (** extra one-way latency for a window (congestion) *)
  | Node_crash of string
  | Node_restart of string
  | Partition of { group_a : string list; group_b : string list }
      (** bipartition: block all traffic between the two node sets *)
  | Heal  (** remove every partition block on every segment *)

type event = { at_ns : int; action : action }

type t = event list

val parse : string -> (t, string) result
(** Parse the text format above. Errors name the offending line. The result
    preserves file order; {!Inject.apply} sorts by time (stable). *)

val parse_file : string -> (t, string) result

val pp_action : Format.formatter -> action -> unit

val pp : Format.formatter -> t -> unit

val action_name : action -> string
(** Short machine name ("link-down", "loss-burst", ...) used in traces. *)

val target_name : action -> string
(** The link / node / group the action applies to ("" for [Heal]). *)
