type t = {
  base_ns : int;
  factor : float;
  max_ns : int;
  jitter : float;
  rng : Engine.Rng.t;
  mutable attempt : int;
}

let create ?(base_ns = 1_000_000) ?(factor = 2.0) ?(max_ns = 1_000_000_000)
    ?(jitter = 0.25) ~seed () =
  if base_ns <= 0 then invalid_arg "Backoff: base_ns must be positive";
  if max_ns <= 0 then invalid_arg "Backoff: max_ns must be positive";
  if factor < 1.0 then invalid_arg "Backoff: factor must be >= 1";
  if not (jitter >= 0.0 && jitter < 1.0) then
    invalid_arg "Backoff: jitter must be in [0, 1)";
  { base_ns; factor; max_ns; jitter; rng = Engine.Rng.create seed; attempt = 0 }

let next t =
  let raw =
    float_of_int t.base_ns *. (t.factor ** float_of_int t.attempt)
  in
  let capped = Float.min raw (float_of_int t.max_ns) in
  let scale =
    if t.jitter = 0.0 then 1.0
    else 1.0 -. t.jitter +. Engine.Rng.float t.rng (2.0 *. t.jitter)
  in
  t.attempt <- t.attempt + 1;
  max 1 (int_of_float (capped *. scale))

let attempt t = t.attempt

let reset t = t.attempt <- 0
