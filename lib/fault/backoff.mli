(** Exponential backoff with deterministic jitter.

    Reconnect schedules must spread retries (avoid thundering herds when a
    shared link heals) yet replay identically under the same seed — so the
    jitter comes from a private {!Engine.Rng.t} seeded explicitly, not from
    wall-clock entropy. Two instances created with the same parameters and
    seed produce the same delay sequence. *)

type t

val create :
  ?base_ns:int ->
  ?factor:float ->
  ?max_ns:int ->
  ?jitter:float ->
  seed:int ->
  unit ->
  t
(** Defaults: [base_ns] = 1 ms, [factor] = 2.0, [max_ns] = 1 s,
    [jitter] = 0.25. Raises [Invalid_argument] for a factor < 1, jitter
    outside [0, 1), or non-positive base/max. *)

val next : t -> int
(** Delay in ns for the next attempt:
    [min max_ns (base_ns * factor^attempt)] scaled by a uniform factor in
    [1 - jitter, 1 + jitter]. Increments the attempt counter. *)

val attempt : t -> int
(** Attempts drawn since creation or the last {!reset}. *)

val reset : t -> unit
(** Back to attempt 0 (a healthy connection clears its penalty). The RNG
    stream is {e not} rewound, so determinism only requires the same
    sequence of draws, not the same reset points. *)
