type action =
  | Link_down of string
  | Link_up of string
  | Loss_burst of { link : string; loss : float; duration_ns : int }
  | Latency_spike of { link : string; add_ns : int; duration_ns : int }
  | Node_crash of string
  | Node_restart of string
  | Partition of { group_a : string list; group_b : string list }
  | Heal

type event = { at_ns : int; action : action }

type t = event list

(* ---------- time literals ---------- *)

let duration_of_string s =
  let num, unit_ =
    let n = String.length s in
    let rec split i =
      if i < n && (s.[i] = '.' || (s.[i] >= '0' && s.[i] <= '9')) then
        split (i + 1)
      else i
    in
    let cut = split 0 in
    (String.sub s 0 cut, String.sub s cut (n - cut))
  in
  match (float_of_string_opt num, unit_) with
  | None, _ -> Error (Printf.sprintf "bad duration %S" s)
  | Some v, ("ns" | "") -> Ok (int_of_float v)
  | Some v, "us" -> Ok (int_of_float (v *. 1e3))
  | Some v, "ms" -> Ok (int_of_float (v *. 1e6))
  | Some v, "s" -> Ok (int_of_float (v *. 1e9))
  | Some _, u -> Error (Printf.sprintf "unknown time unit %S in %S" u s)

let pp_duration fmt ns = Engine.Time.pp fmt ns

(* ---------- parsing ---------- *)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let group_of_string s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_action tokens =
  match tokens with
  | [ "link-down"; link ] -> Ok (Link_down link)
  | [ "link-up"; link ] -> Ok (Link_up link)
  | [ "loss-burst"; link; loss; "for"; dur ] | [ "loss-burst"; link; loss; dur ]
    -> (
      let* duration_ns = duration_of_string dur in
      match float_of_string_opt loss with
      | Some l when l >= 0.0 && l <= 1.0 ->
        Ok (Loss_burst { link; loss = l; duration_ns })
      | Some l -> Error (Printf.sprintf "loss %g not in [0, 1]" l)
      | None -> Error (Printf.sprintf "bad loss %S" loss))
  | [ "latency-spike"; link; add; "for"; dur ]
  | [ "latency-spike"; link; add; dur ] ->
    let add = if String.length add > 0 && add.[0] = '+' then
        String.sub add 1 (String.length add - 1)
      else add
    in
    let* add_ns = duration_of_string add in
    let* duration_ns = duration_of_string dur in
    Ok (Latency_spike { link; add_ns; duration_ns })
  | [ "crash"; node ] -> Ok (Node_crash node)
  | [ "restart"; node ] -> Ok (Node_restart node)
  | "partition" :: rest ->
    let spec = String.concat " " rest in
    (match String.split_on_char '|' spec with
     | [ a; b ] ->
       let group_a = group_of_string a and group_b = group_of_string b in
       if group_a = [] || group_b = [] then
         Error "partition: both groups must be non-empty"
       else Ok (Partition { group_a; group_b })
     | _ -> Error "partition: expected  nodes | nodes")
  | [ "heal" ] -> Ok Heal
  | verb :: _ -> Error (Printf.sprintf "unknown action %S" verb)
  | [] -> Error "empty action"

let parse_line line =
  match
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  with
  | "at" :: time :: rest ->
    let* at_ns = duration_of_string time in
    let* action = parse_action rest in
    Ok (Some { at_ns; action })
  | [] -> Ok None
  | _ -> Error "expected:  at <time> <action> ..."

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      (match parse_line (String.trim line) with
       | Ok None -> go (lineno + 1) acc rest
       | Ok (Some ev) -> go (lineno + 1) (ev :: acc) rest
       | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go 1 [] lines

let parse_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let len = in_channel_length ic in
    let text = really_input_string ic len in
    close_in ic;
    parse text

(* ---------- printing ---------- *)

let action_name = function
  | Link_down _ -> "link-down"
  | Link_up _ -> "link-up"
  | Loss_burst _ -> "loss-burst"
  | Latency_spike _ -> "latency-spike"
  | Node_crash _ -> "crash"
  | Node_restart _ -> "restart"
  | Partition _ -> "partition"
  | Heal -> "heal"

let target_name = function
  | Link_down l | Link_up l | Loss_burst { link = l; _ }
  | Latency_spike { link = l; _ } ->
    l
  | Node_crash n | Node_restart n -> n
  | Partition { group_a; group_b } ->
    String.concat "," group_a ^ "|" ^ String.concat "," group_b
  | Heal -> ""

let pp_action fmt = function
  | Link_down l -> Format.fprintf fmt "link-down %s" l
  | Link_up l -> Format.fprintf fmt "link-up %s" l
  | Loss_burst { link; loss; duration_ns } ->
    Format.fprintf fmt "loss-burst %s %g for %a" link loss pp_duration
      duration_ns
  | Latency_spike { link; add_ns; duration_ns } ->
    Format.fprintf fmt "latency-spike %s +%a for %a" link pp_duration add_ns
      pp_duration duration_ns
  | Node_crash n -> Format.fprintf fmt "crash %s" n
  | Node_restart n -> Format.fprintf fmt "restart %s" n
  | Partition { group_a; group_b } ->
    Format.fprintf fmt "partition %s | %s"
      (String.concat "," group_a)
      (String.concat "," group_b)
  | Heal -> Format.fprintf fmt "heal"

let pp fmt plan =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun { at_ns; action } ->
       Format.fprintf fmt "at %a %a@," pp_duration at_ns pp_action action)
    plan;
  Format.fprintf fmt "@]"
