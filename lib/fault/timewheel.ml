type timer = {
  mutable cb : (unit -> unit) option; (* None once fired or cancelled *)
  wheel : t;
  slot_idx : int;
  deadline : int; (* requested (unrounded) firing instant *)
  seq : int; (* arm order, the tie-break within a deadline *)
}

and slot = {
  mutable entries : timer list;
  mutable alive : int; (* consulted on wall clocks only *)
  mutable handle : Engine.Clock.timer option;
}

and t = {
  clk : Engine.Clock.t;
  slot_ns : int;
  slots : (int, slot) Hashtbl.t;
  mutable live : int;
  mutable next_seq : int;
}

let create_on ?(slot_ns = 65_536) clk =
  if slot_ns <= 0 then invalid_arg "Timewheel: slot_ns must be positive";
  { clk; slot_ns; slots = Hashtbl.create 64; live = 0; next_seq = 0 }

let create ?slot_ns sim = create_on ?slot_ns (Engine.Sim.clock sim)

(* One shared wheel per clock, keyed by Clock.id; the list stays tiny (one
   entry per live simulation or host loop). Mutex-guarded: in a sharded
   run every shard arms timers through here, each against its own
   shard's clock — distinct wheels, one registry. *)
let shared : (int * t) list ref = ref []
let shared_lock = Mutex.create ()
let () = Engine.Lifecycle.on_reset (fun () ->
    Mutex.protect shared_lock (fun () -> shared := []))

let for_clock clk =
  let key = Engine.Clock.id clk in
  Mutex.protect shared_lock (fun () ->
      match List.find_opt (fun (k, _) -> k = key) !shared with
      | Some (_, w) -> w
      | None ->
        let w = create_on clk in
        shared := (key, w) :: !shared;
        (* Keep the registry from growing across many short-lived simulations
           (tests): drop entries whose clock is not the one being asked for once
           the list gets long. Correctness is unaffected — a dropped wheel is
           simply recreated if its clock is ever used again. *)
        if List.length !shared > 64 then
          shared := List.filteri (fun i _ -> i < 32) !shared;
        w)

let for_sim sim = for_clock (Engine.Sim.clock sim)

let fire_slot t idx =
  match Hashtbl.find_opt t.slots idx with
  | None -> ()
  | Some s ->
    Hashtbl.remove t.slots idx;
    (* Fire in (requested deadline, arm order): the wheel then observes the
       same relative firing order a per-timer heap would, even when timers
       with different deadlines share a slot. For equal deadlines this is
       exactly the historical arm order. *)
    let ordered =
      List.sort
        (fun a b ->
           if a.deadline <> b.deadline then compare a.deadline b.deadline
           else compare a.seq b.seq)
        s.entries
    in
    List.iter
      (fun timer ->
         match timer.cb with
         | None -> ()
         | Some f ->
           timer.cb <- None;
           t.live <- t.live - 1;
           f ())
      ordered

let arm t ~after_ns f =
  let after_ns = max 0 after_ns in
  let now = Engine.Clock.now t.clk in
  let deadline = now + after_ns in
  (* Round up to the next slot boundary: never fire early. *)
  let idx = (deadline + t.slot_ns - 1) / t.slot_ns in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let timer = { cb = Some f; wheel = t; slot_idx = idx; deadline; seq } in
  (match Hashtbl.find_opt t.slots idx with
   | Some s ->
     s.entries <- timer :: s.entries;
     s.alive <- s.alive + 1
   | None ->
     let s = { entries = [ timer ]; alive = 1; handle = None } in
     Hashtbl.replace t.slots idx s;
     s.handle <-
       Some
         (Engine.Clock.arm t.clk
            (max 0 ((idx * t.slot_ns) - now))
            (fun () -> fire_slot t idx)));
  t.live <- t.live + 1;
  timer

let cancel timer =
  match timer.cb with
  | None -> ()
  | Some _ ->
    timer.cb <- None;
    let t = timer.wheel in
    t.live <- t.live - 1;
    (* On a wall clock an armed-but-dead slot would keep the reactor alive
       (e.g. 120 s conformance deadlines that always get cancelled), so
       release the underlying OS timer once a slot holds no live entry.
       The virtual heap has no such liveness notion — leave its (no-op)
       slot event in place so heap contents stay byte-identical. *)
    if not (Engine.Clock.is_virtual t.clk) then
      match Hashtbl.find_opt t.slots timer.slot_idx with
      | None -> ()
      | Some s ->
        s.alive <- s.alive - 1;
        if s.alive <= 0 then begin
          Hashtbl.remove t.slots timer.slot_idx;
          match s.handle with
          | None -> ()
          | Some h -> Engine.Clock.cancel h
        end

let pending t = t.live
