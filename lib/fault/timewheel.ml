type timer = {
  mutable cb : (unit -> unit) option; (* None once fired or cancelled *)
  wheel : t;
}

and t = {
  sim : Engine.Sim.t;
  slot_ns : int;
  slots : (int, timer list ref) Hashtbl.t;
  mutable live : int;
}

let create ?(slot_ns = 65_536) sim =
  if slot_ns <= 0 then invalid_arg "Timewheel: slot_ns must be positive";
  { sim; slot_ns; slots = Hashtbl.create 64; live = 0 }

(* One shared wheel per simulator. Sim.t is mutable, so key by physical
   identity; the list stays tiny (one entry per live simulation). *)
let shared : (Engine.Sim.t * t) list ref = ref []

let for_sim sim =
  match List.find_opt (fun (s, _) -> s == sim) !shared with
  | Some (_, w) -> w
  | None ->
    let w = create sim in
    shared := (sim, w) :: !shared;
    (* Keep the registry from growing across many short-lived simulations
       (tests): drop entries whose sim is not the one being asked for once
       the list gets long. Correctness is unaffected — a dropped wheel is
       simply recreated if its sim is ever used again. *)
    if List.length !shared > 64 then
      shared := List.filteri (fun i _ -> i < 32) !shared;
    w

let fire_slot t slot =
  match Hashtbl.find_opt t.slots slot with
  | None -> ()
  | Some timers ->
    Hashtbl.remove t.slots slot;
    List.iter
      (fun timer ->
         match timer.cb with
         | None -> ()
         | Some f ->
           timer.cb <- None;
           t.live <- t.live - 1;
           f ())
      (List.rev !timers)

let arm t ~after_ns f =
  let after_ns = max 0 after_ns in
  let deadline = Engine.Sim.now t.sim + after_ns in
  (* Round up to the next slot boundary: never fire early. *)
  let slot = (deadline + t.slot_ns - 1) / t.slot_ns in
  let timer = { cb = Some f; wheel = t } in
  (match Hashtbl.find_opt t.slots slot with
   | Some timers -> timers := timer :: !timers
   | None ->
     Hashtbl.replace t.slots slot (ref [ timer ]);
     Engine.Sim.at t.sim
       (max (Engine.Sim.now t.sim) (slot * t.slot_ns))
       (fun () -> fire_slot t slot));
  t.live <- t.live + 1;
  timer

let cancel timer =
  match timer.cb with
  | None -> ()
  | Some _ ->
    timer.cb <- None;
    timer.wheel.live <- timer.wheel.live - 1

let pending t = t.live
