module Bb = Engine.Bytebuf
module Netdb = Selector.Netdb
module Tree = Collectives.Tree
module Group = Collectives.Group

(* ---------- Netdb: topology partition ---------- *)

let test_netdb_two_clusters () =
  let grid, a1, a2, b1, b2 = Tutil.two_clusters ~wan:Simnet.Presets.vthd () in
  let db = Netdb.build (Padico.net grid) [| a1; a2; b1; b2 |] in
  Tutil.check_int "size" 4 (Netdb.size db);
  Tutil.check_int "two clusters" 2 (Netdb.cluster_count db);
  Tutil.check_int "a1 in cluster 0" 0 (Netdb.cluster_of db 0);
  Tutil.check_int "a2 in cluster 0" 0 (Netdb.cluster_of db 1);
  Tutil.check_int "b1 in cluster 1" 1 (Netdb.cluster_of db 2);
  Tutil.check_int "b2 in cluster 1" 1 (Netdb.cluster_of db 3);
  Tutil.check_int "leader 0" 0 (Netdb.leader db 0);
  Tutil.check_int "leader 1" 2 (Netdb.leader db 1);
  Tutil.check_int "position of b2" 1 (Netdb.position db 3);
  Tutil.check_string "san island" "san"
    (Netdb.level_name (Netdb.cluster_level db 0));
  Tutil.check_string "intra hop" "san" (Netdb.level_name (Netdb.hop_level db 0 1));
  Tutil.check_string "inter hop" "wan" (Netdb.level_name (Netdb.hop_level db 1 2))

let test_netdb_lan_cluster () =
  (* Only an Ethernet (LAN) segment: one cluster at level lan. *)
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.ethernet100 in
  let db = Netdb.build (Padico.net grid) [| a; b |] in
  Tutil.check_int "one cluster" 1 (Netdb.cluster_count db);
  Tutil.check_string "lan level" "lan"
    (Netdb.level_name (Netdb.cluster_level db 0))

let test_netdb_same_host_and_singleton () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore (Padico.add_segment grid Simnet.Presets.vthd [ a; b ]);
  (* Two ranks on one host cluster together even with no SAN/LAN; the
     remote rank is a singleton San cluster across the WAN. *)
  let db = Netdb.build (Padico.net grid) [| a; a; b |] in
  Tutil.check_int "two clusters" 2 (Netdb.cluster_count db);
  Tutil.check_int "ranks 0,1 share" (Netdb.cluster_of db 0)
    (Netdb.cluster_of db 1);
  Tutil.check_string "singleton is san" "san"
    (Netdb.level_name (Netdb.cluster_level db (Netdb.cluster_of db 2)));
  Tutil.check_string "cross hop" "wan"
    (Netdb.level_name (Netdb.hop_level db 0 2))

(* ---------- Tree: binomial navigation ---------- *)

let test_tree_properties () =
  List.iter
    (fun m ->
       let seen = Array.make m 0 in
       for v = 0 to m - 1 do
         Tree.iter_children ~m v (fun c ->
             Tutil.check_int
               (Printf.sprintf "parent of %d (m=%d)" c m)
               v (Tree.parent c);
             seen.(c) <- seen.(c) + 1)
       done;
       (* Every non-root vrank is the child of exactly one parent. *)
       Tutil.check_int "root has no parent edge" 0 seen.(0);
       for v = 1 to m - 1 do
         Tutil.check_int (Printf.sprintf "vrank %d has one parent" v) 1
           seen.(v)
       done;
       (* child_toward finds the unique child whose range holds the target. *)
       for v = 0 to m - 1 do
         for target = v + 1 to Tree.subtree_last ~m v - 1 do
           let c = Tree.child_toward ~m v ~target in
           Tutil.check_bool "routes into child range" true
             (c <= target && target < Tree.subtree_last ~m c);
           Tutil.check_int "route is a child" v (Tree.parent c)
         done
       done)
    [ 1; 2; 3; 5; 8; 13; 16; 31 ]

(* ---------- collectives correctness ---------- *)

let byte_buf len v =
  let b = Bb.create len in
  for i = 0 to len - 1 do
    Bb.set_u8 b i v
  done;
  b

(* Run one process per rank executing [body rank member] and drive the grid
   to quiescence. *)
let run_members grid nodes members body =
  let handles =
    List.mapi
      (fun r node ->
         Padico.spawn grid node ~name:(Printf.sprintf "rank%d" r)
           (fun () -> body r members.(r)))
      nodes
  in
  Tutil.run_grid grid;
  List.iter Tutil.assert_done handles

let four_node_grid () =
  let grid, a1, a2, b1, b2 = Tutil.two_clusters ~wan:Simnet.Presets.vthd () in
  (grid, [ a1; a2; b1; b2 ])

let test_all_ops strategy =
  let grid, nodes = four_node_grid () in
  let members =
    Group.create ~strategy grid ~name:"ops" nodes
  in
  let n = List.length nodes in
  let bcasts = Array.make n None in
  let reds = Array.make n None in
  let alls = Array.make n None in
  let gaths = Array.make n None in
  let scats = Array.make n None in
  let root_payload = Tutil.pattern_buf ~seed:42 1000 in
  run_members grid nodes members (fun r g ->
      Group.barrier g;
      bcasts.(r) <- Some (Group.bcast g ~root:1 root_payload);
      reds.(r) <- Some (Group.reduce g ~root:2 ~op:Group.Sum (byte_buf 4 (10 + r)));
      alls.(r) <- Some (Group.allreduce g ~op:Group.Max (byte_buf 4 (10 + r)));
      gaths.(r) <- Some (Group.gather g ~root:0 (Tutil.pattern_buf ~seed:r (8 + r)));
      scats.(r) <-
        Some
          (Group.scatter g ~root:3
             (Array.init n (fun i -> byte_buf 16 (i + 1))));
      Group.barrier g);
  for r = 0 to n - 1 do
    (match bcasts.(r) with
     | Some p -> Tutil.check_bool "bcast payload" true (Bb.equal p root_payload)
     | None -> Alcotest.failf "rank %d missed bcast" r);
    (match reds.(r) with
     | Some res ->
       if r = 2 then (
         match res with
         | Some p ->
           Tutil.check_int "sum at root" ((10 + 11 + 12 + 13) land 0xff)
             (Bb.get_u8 p 0)
         | None -> Alcotest.fail "root reduce missing result")
       else Tutil.check_bool "non-root reduce has no result" true (res = None)
     | None -> Alcotest.failf "rank %d missed reduce" r);
    (match alls.(r) with
     | Some p -> Tutil.check_int "allreduce max" 13 (Bb.get_u8 p 0)
     | None -> Alcotest.failf "rank %d missed allreduce" r);
    (match gaths.(r) with
     | Some res ->
       if r = 0 then (
         match res with
         | Some arr ->
           Tutil.check_int "gathered all" n (Array.length arr);
           Array.iteri
             (fun i p ->
                Tutil.check_bool
                  (Printf.sprintf "gather entry %d" i)
                  true
                  (Bb.equal p (Tutil.pattern_buf ~seed:i (8 + i))))
             arr
         | None -> Alcotest.fail "root gather missing result")
       else Tutil.check_bool "non-root gather empty" true (res = None)
     | None -> Alcotest.failf "rank %d missed gather" r);
    match scats.(r) with
    | Some p ->
      Tutil.check_bool
        (Printf.sprintf "scatter entry %d" r)
        true
        (Bb.equal p (byte_buf 16 (r + 1)))
    | None -> Alcotest.failf "rank %d missed scatter" r
  done

let test_ops_flat () = test_all_ops Group.Flat
let test_ops_multilevel () = test_all_ops Group.Multilevel

let test_three_cluster_allreduce () =
  (* Deeper trees: 3 islands x 3 nodes, allreduce with byte-wise sum. *)
  let grid = Padico.create () in
  let nodes =
    List.concat_map
      (fun c ->
         let island =
           List.init 3 (fun i ->
               Padico.add_node grid (Printf.sprintf "n%d-%d" c i))
         in
         ignore
           (Padico.add_segment grid Simnet.Presets.myrinet2000
              ~name:(Printf.sprintf "san%d" c)
              island);
         island)
      [ 0; 1; 2 ]
  in
  ignore (Padico.add_segment grid Simnet.Presets.vthd ~name:"wan" nodes);
  let members = Group.create grid ~name:"tri" nodes in
  let db = Group.netdb members.(0) in
  Tutil.check_int "three clusters" 3 (Netdb.cluster_count db);
  let n = List.length nodes in
  let results = Array.make n None in
  run_members grid nodes members (fun r g ->
      results.(r) <- Some (Group.allreduce g ~op:Group.Sum (byte_buf 8 (r + 1))));
  let expected = (List.init n (fun i -> i + 1) |> List.fold_left ( + ) 0) land 0xff in
  Array.iteri
    (fun r res ->
       match res with
       | Some p ->
         Tutil.check_int (Printf.sprintf "rank %d sum" r) expected
           (Bb.get_u8 p 0)
       | None -> Alcotest.failf "rank %d missed allreduce" r)
    results

(* ---------- WAN crossing accounting ---------- *)

let test_wan_counts () =
  (* Multilevel bcast crosses each WAN boundary exactly once (C - 1
     messages); flat pays one per remote rank. *)
  let grid, nodes = four_node_grid () in
  let ml = Group.create ~strategy:Group.Multilevel grid ~name:"wml" nodes in
  run_members grid nodes ml (fun _ g ->
      ignore (Group.bcast g ~root:0 (Bb.create 256)));
  Tutil.check_int "multilevel bcast wan msgs" 1 (Group.wan_messages ml.(0));
  let grid, nodes = four_node_grid () in
  let fl = Group.create ~strategy:Group.Flat grid ~name:"wfl" nodes in
  run_members grid nodes fl (fun _ g ->
      ignore (Group.bcast g ~root:0 (Bb.create 256)));
  Tutil.check_int "flat bcast wan msgs" 2 (Group.wan_messages fl.(0));
  Tutil.check_bool "flat wan bytes dominate" true
    (Group.wan_bytes fl.(0) > Group.wan_bytes ml.(0))

let test_barrier_wan_round_trip () =
  let grid, nodes = four_node_grid () in
  let ml = Group.create ~strategy:Group.Multilevel grid ~name:"wbar" nodes in
  run_members grid nodes ml (fun _ g -> Group.barrier g);
  (* One up crossing, one down crossing. *)
  Tutil.check_int "barrier wan msgs" 2 (Group.wan_messages ml.(0))

(* ---------- failure: deadline instead of hang ---------- *)

let test_deadline_no_hang () =
  let grid = Padico.create () in
  let mk c i = Padico.add_node grid (Printf.sprintf "%c%d" c i) in
  let a1 = mk 'a' 1 and a2 = mk 'a' 2 and b1 = mk 'b' 1 and b2 = mk 'b' 2 in
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"sa" [ a1; a2 ]);
  ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"sb" [ b1; b2 ]);
  let wan =
    Padico.add_segment grid Simnet.Presets.vthd ~name:"wan" [ a1; a2; b1; b2 ]
  in
  let nodes = [ a1; a2; b1; b2 ] in
  let members =
    Group.create ~deadline_ns:(Engine.Time.sec 1) grid ~name:"dead" nodes
  in
  Simnet.Segment.set_down wan true;
  let failures = ref 0 in
  run_members grid nodes members (fun _ g ->
      match Group.barrier g with
      | () -> Alcotest.fail "barrier succeeded across a dead WAN"
      | exception Group.Failed _ -> incr failures);
  Tutil.check_int "every rank failed cleanly" 4 !failures;
  Tutil.check_bool "group poisoned" true (Group.poisoned members.(0) <> None);
  (* Subsequent operations refuse instead of hanging. *)
  let again = ref None in
  Group.ibarrier members.(0) (fun r -> again := Some r);
  match !again with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "poisoned group accepted a new operation"

(* ---------- strategies agree ---------- *)

let test_strategies_agree () =
  let payload = Tutil.pattern_buf ~seed:7 4096 in
  let result_of strategy =
    let grid, nodes = four_node_grid () in
    let members = Group.create ~strategy grid ~name:"agree" nodes in
    let out = Array.make 4 None in
    run_members grid nodes members (fun r g ->
        let b = Group.bcast g ~root:2 payload in
        let s = Group.allreduce g ~op:Group.Bxor (byte_buf 32 (r * 3)) in
        out.(r) <- Some (Bb.checksum b, Bb.checksum s));
    Array.map Option.get out
  in
  let flat = result_of Group.Flat and ml = result_of Group.Multilevel in
  Array.iteri
    (fun r (bf, sf) ->
       let bm, sm = ml.(r) in
       Tutil.check_int (Printf.sprintf "bcast agrees at %d" r) bf bm;
       Tutil.check_int (Printf.sprintf "allreduce agrees at %d" r) sf sm)
    flat

let () =
  Alcotest.run "collectives"
    [ ("netdb",
       [ Alcotest.test_case "two clusters" `Quick test_netdb_two_clusters;
         Alcotest.test_case "lan cluster" `Quick test_netdb_lan_cluster;
         Alcotest.test_case "same host + singleton" `Quick
           test_netdb_same_host_and_singleton ]);
      ("tree",
       [ Alcotest.test_case "binomial properties" `Quick test_tree_properties ]);
      ("ops",
       [ Alcotest.test_case "all ops, flat" `Quick test_ops_flat;
         Alcotest.test_case "all ops, multilevel" `Quick test_ops_multilevel;
         Alcotest.test_case "three clusters" `Quick
           test_three_cluster_allreduce;
         Alcotest.test_case "strategies agree" `Quick test_strategies_agree ]);
      ("topology-aware",
       [ Alcotest.test_case "wan crossings" `Quick test_wan_counts;
         Alcotest.test_case "barrier round trip" `Quick
           test_barrier_wan_round_trip ]);
      ("faults",
       [ Alcotest.test_case "deadline, no hang" `Quick test_deadline_no_hang ]);
    ]
