(* Flow control and overload protection (PR 3): bounded Streamq +
   watermarks, bounded Proc.Mailbox, Na_core admission control, MadIO
   credits, Vl EAGAIN semantics, Resilient windows, and QCheck properties
   over random producer/consumer rate schedules.

   The per-adapter timeout/peer-death matrices that used to live here are
   now obligations in the conformance kit (lib/check/conform.ml), which
   states them once and runs them against every adapter under every
   schedule policy — see test_check.ml and `padico_cli check`. *)

module Bb = Engine.Bytebuf
module Time = Engine.Time
module Proc = Engine.Proc
module Vl = Vlink.Vl
module Streamq = Vlink.Streamq
module Na_core = Netaccess.Na_core
module Madio = Netaccess.Madio
module Vio = Personalities.Vio

open Tutil

(* ---------- a bounded, synchronous in-memory pipe ----------

   Each direction holds at most [cap] unread bytes; a write is accepted
   only up to the free space (partial counts, 0 = full) and the peer's
   reads reopen it with a [Writable] event. No wire time: refusal and
   resumption are exact, which makes backpressure tests deterministic. *)

let bounded_pipe node ~cap =
  let sim = Simnet.Node.sim node in
  let rx_a = Streamq.create () and rx_b = Streamq.create () in
  let va_cell = ref None and vb_cell = ref None in
  let closed_a = ref false and closed_b = ref false in
  (* Deliver events asynchronously, as real drivers do: a synchronous
     notify from inside o_read/o_write would re-enter the peer's request
     pump and recurse. *)
  let notify cell ev =
    Engine.Sim.after sim 0 (fun () ->
        match !cell with Some vl -> Vl.notify vl ev | None -> ())
  in
  let mk name my_rx peer_rx my_closed peer_closed my_cell peer_cell =
    { Vl.o_write =
        (fun buf ->
           if !my_closed || !peer_closed then 0
           else begin
             let space = cap - Streamq.length peer_rx in
             let n = min (Bb.length buf) space in
             if n > 0 then begin
               Streamq.push peer_rx (Bb.copy (Bb.sub buf 0 n));
               notify peer_cell Vl.Readable
             end;
             n
           end);
      o_read =
        (fun ~max ->
           let r = Streamq.pop my_rx ~max in
           (* Space reopened on the peer's send side. *)
           if r <> None then notify peer_cell Vl.Writable;
           r);
      o_readable = (fun () -> Streamq.length my_rx);
      o_write_space =
        (fun () ->
           if !my_closed || !peer_closed then 0
           else cap - Streamq.length peer_rx);
      o_close =
        (fun () ->
           if not !my_closed then begin
             my_closed := true;
             notify peer_cell Vl.Peer_closed;
             notify my_cell Vl.Peer_closed
           end);
      o_driver = name }
  in
  let va =
    Vl.create_connected node
      (mk "pipe-a" rx_a rx_b closed_a closed_b va_cell vb_cell)
  in
  let vb =
    Vl.create_connected node
      (mk "pipe-b" rx_b rx_a closed_b closed_a vb_cell va_cell)
  in
  va_cell := Some va;
  vb_cell := Some vb;
  (va, vb)

(* ---------- Streamq ---------- *)

let test_pop_exact_spans_chunks () =
  let q = Streamq.create () in
  Streamq.push q (Bb.of_string "abc");
  Streamq.push q (Bb.of_string "defgh");
  Streamq.push q (Bb.of_string "ijklmno");
  check_string "crosses first boundary" "abcdef"
    (Bb.to_string (Streamq.pop_exact q 6));
  check_string "crosses second boundary" "ghijk"
    (Bb.to_string (Streamq.pop_exact q 5));
  check_string "rest" "lmno" (Bb.to_string (Streamq.pop_exact q 4));
  check_int "drained" 0 (Streamq.length q)

let test_zero_length_pushes () =
  let q = Streamq.create () in
  Streamq.push q (Bb.create 0);
  check_int "empty push ignored" 0 (Streamq.length q);
  check_bool "still empty" true (Streamq.is_empty q);
  Streamq.push q (Bb.of_string "xy");
  Streamq.push q (Bb.create 0);
  Streamq.push q (Bb.of_string "z");
  check_string "zero-length pushes are transparent" "xyz"
    (Bb.to_string (Streamq.pop_exact q 3))

let test_pop_edge_cases () =
  let q = Streamq.create () in
  Streamq.push q (Bb.of_string "data");
  check_bool "pop ~max:0 returns None" true (Streamq.pop q ~max:0 = None);
  check_int "nothing consumed" 4 (Streamq.length q);
  check_int "pop_exact 0 is empty" 0 (Bb.length (Streamq.pop_exact q 0));
  Alcotest.check_raises "pop_exact negative"
    (Invalid_argument "Streamq.pop_exact: negative length") (fun () ->
      ignore (Streamq.pop_exact q (-1)));
  Alcotest.check_raises "pop_exact underflow"
    (Invalid_argument "Streamq.pop_exact: not enough bytes") (fun () ->
      ignore (Streamq.pop_exact q 5))

let test_watermarks () =
  let q = Streamq.create ~high:10 ~low:4 () in
  check_bool "empty is writable" true (Streamq.writable q);
  check_bool "empty below low" true (Streamq.below_low q);
  Streamq.push q (Bb.create 10);
  check_bool "at high" true (Streamq.above_high q);
  check_bool "not writable at high" false (Streamq.writable q);
  check_bool "not below low" false (Streamq.below_low q);
  ignore (Streamq.pop_exact q 6);
  check_bool "drained below low" true (Streamq.below_low q);
  check_bool "writable again" true (Streamq.writable q);
  check_int "peak remembered" 10 (Streamq.peak q);
  Alcotest.check_raises "bad watermarks"
    (Invalid_argument "Streamq.create: need 0 <= low <= high") (fun () ->
      ignore (Streamq.create ~high:4 ~low:5 ()))

(* ---------- Proc.Mailbox capacity ---------- *)

let test_mailbox_capacity () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let mb = Proc.Mailbox.create ~capacity:2 () in
  let order = ref [] in
  let producer =
    Simnet.Node.spawn a (fun () ->
        for i = 1 to 6 do
          Proc.Mailbox.send mb i;
          order := `Sent i :: !order
        done)
  in
  let consumer =
    Simnet.Node.spawn a (fun () ->
        for _ = 1 to 6 do
          let v = Proc.Mailbox.recv mb in
          order := `Got v :: !order;
          Proc.sleep (Simnet.Node.sim a) (Time.us 10)
        done)
  in
  run_net net;
  assert_done producer;
  assert_done consumer;
  check_int "peak bounded by capacity" 2 (Proc.Mailbox.peak mb);
  let got = List.filter_map (function `Got v -> Some v | _ -> None)
      (List.rev !order) in
  Alcotest.(check (list int)) "in order" [ 1; 2; 3; 4; 5; 6 ] got;
  Alcotest.check_raises "capacity < 1"
    (Invalid_argument "Mailbox.create: capacity < 1") (fun () ->
      ignore (Proc.Mailbox.create ~capacity:0 ()))

(* ---------- Na_core admission control ---------- *)

let test_admission_defer_readmit () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let core = Na_core.get a in
  Na_core.set_admission core Na_core.Sysio_work ~high:2 ~low:1;
  let ran = ref [] in
  (* Fill the queue past the high watermark with Normal work... *)
  for i = 1 to 3 do
    Na_core.post core Na_core.Sysio_work (fun () -> ran := i :: !ran)
  done;
  (* ...then Low-priority posts are deferred, not queued. *)
  Na_core.post ~prio:Na_core.Low core Na_core.Sysio_work (fun () ->
      ran := 99 :: !ran);
  check_int "deferred" 1 (Na_core.deferred_depth core Na_core.Sysio_work);
  (* Droppable work is shed outright at the watermark. *)
  let admitted =
    Na_core.post_droppable core Na_core.Sysio_work (fun () ->
        ran := 1000 :: !ran)
  in
  check_bool "shed" false admitted;
  check_int "shed counted" 1 (Na_core.shed_count core Na_core.Sysio_work);
  run_net net;
  (* Deferred work was readmitted once the queue drained; shed work never
     ran. *)
  Alcotest.(check (list int)) "order with readmission" [ 1; 2; 3; 99 ]
    (List.rev !ran);
  check_int "readmissions counted" 1
    (Na_core.deferred_count core Na_core.Sysio_work);
  check_bool "peak >= high" true
    (Na_core.queue_peak core Na_core.Sysio_work >= 2)

(* ---------- Vl EAGAIN semantics ---------- *)

let test_nonblock_write_again () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let va, vb = bounded_pipe a ~cap:8 in
  let h =
    Simnet.Node.spawn a (fun () ->
        (* Fill the pipe exactly. *)
        (match Vl.await (Vl.post_write ~nonblock:true va (Bb.create 8)) with
         | Vl.Done n -> check_int "filled" 8 n
         | _ -> Alcotest.fail "first write should fit");
        check_int "no space left" 0 (Vl.write_space va);
        (* Nonblock write against a full pipe: Again, nothing queued. *)
        (match Vl.await (Vl.post_write ~nonblock:true va (Bb.create 4)) with
         | Vl.Again -> ()
         | _ -> Alcotest.fail "expected Again");
        (* Park on writability; the reader drains; the hook fires; the
           retry succeeds. *)
        let fired = ref false in
        Vl.on_writable va (fun () -> fired := true);
        check_bool "not writable yet" false !fired;
        (match Vl.await (Vl.post_read vb (Bb.create 8)) with
         | Vl.Done 8 -> ()
         | _ -> Alcotest.fail "drain failed");
        check_bool "hook fired on drain" true !fired;
        match Vl.await (Vl.post_write ~nonblock:true va (Bb.create 4)) with
        | Vl.Done 4 -> ()
        | _ -> Alcotest.fail "retry should succeed")
  in
  run_net net;
  assert_done h

let test_on_writable_while_connecting () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let vl = Vl.create a in
  (* Nonblock write on a connecting link: Again, not queued. *)
  (match Vl.poll (Vl.post_write ~nonblock:true vl (Bb.create 4)) with
   | Some Vl.Again -> ()
   | _ -> Alcotest.fail "connecting => Again");
  let fired = ref false in
  Vl.on_writable vl (fun () -> fired := true);
  check_bool "parked while connecting" false !fired;
  let va, _vb = bounded_pipe a ~cap:64 in
  ignore va;
  Vl.attach_ops vl
    { Vl.o_write = (fun b -> Bb.length b);
      o_read = (fun ~max:_ -> None); o_readable = (fun () -> 0);
      o_write_space = (fun () -> 64); o_close = (fun () -> ());
      o_driver = "stub" };
  check_bool "fires on connect" true !fired

let test_blocking_writer_completes () =
  (* A blocking post_write bigger than the pipe waits for the reader and
     completes — the baseline no-livelock guarantee. *)
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let va, vb = bounded_pipe a ~cap:16 in
  let writer =
    Simnet.Node.spawn a (fun () ->
        match Vl.await (Vl.post_write va (Bb.create 100)) with
        | Vl.Done 100 -> ()
        | _ -> Alcotest.fail "blocking write must complete fully")
  in
  let reader =
    Simnet.Node.spawn a (fun () ->
        let got = ref 0 in
        let buf = Bb.create 16 in
        while !got < 100 do
          (match Vl.await (Vl.post_read vb buf) with
           | Vl.Done n -> got := !got + n
           | _ -> Alcotest.fail "read failed");
          Proc.sleep (Simnet.Node.sim a) (Time.us 5)
        done)
  in
  run_net net;
  assert_done writer;
  assert_done reader

(* ---------- MadIO credits ---------- *)

let madio_pair () =
  let net, a, b, seg = pair Simnet.Presets.myrinet2000 in
  let ma = Madio.init (Madeleine.Mad.init seg a) in
  let mb = Madio.init (Madeleine.Mad.init seg b) in
  (net, a, b, ma, mb)

let test_credit_soft_enforcement () =
  let net, a, b, ma, mb = madio_pair () in
  Madio.set_credit_window ma 4096;
  Madio.set_credit_window mb 4096;
  let la = Madio.open_lchannel ma ~id:7 in
  let lb = Madio.open_lchannel mb ~id:7 in
  let got = ref 0 in
  Madio.set_recv lb (fun ~src:_ msg -> got := !got + Bb.length msg);
  let h =
    Simnet.Node.spawn a (fun () ->
        check_int "window is the initial space" 4096
          (Madio.send_space la ~dst:(Simnet.Node.id b));
        (* Two back-to-back 3 KiB sends against a 4 KiB window: the
           second overcommits — soft enforcement lets it through and
           counts a stall instead of blocking (control must flow). *)
        Madio.send la ~dst:(Simnet.Node.id b) (Bb.create 3072);
        Madio.send la ~dst:(Simnet.Node.id b) (Bb.create 3072))
  in
  run_net net;
  assert_done h;
  check_int "both delivered" 6144 !got;
  check_bool "overcommit counted as stall" true (Madio.credit_stalls ma >= 1);
  check_bool "space recovered after grants" true
    (Madio.send_space la ~dst:(Simnet.Node.id b) > 0)

let test_credit_only_message_one_way () =
  (* A pure one-way flow has no reverse traffic to piggyback grants on:
     the receiver must emit explicit credit-only messages (at half
     window), or the sender runs dry forever. *)
  let net, a, b, ma, mb = madio_pair () in
  Madio.set_credit_window ma 8192;
  Madio.set_credit_window mb 8192;
  let la = Madio.open_lchannel ma ~id:9 in
  let lb = Madio.open_lchannel mb ~id:9 in
  let got = ref 0 in
  Madio.set_recv lb (fun ~src:_ msg -> got := !got + Bb.length msg);
  let total = 64 * 1024 in
  let h =
    Simnet.Node.spawn a (fun () ->
        let sent = ref 0 in
        while !sent < total do
          let n = min 2048 (Madio.send_space la ~dst:(Simnet.Node.id b)) in
          if n > 0 then begin
            Madio.send la ~dst:(Simnet.Node.id b) (Bb.create n);
            sent := !sent + n
          end
          else
            Proc.suspend (fun resume ->
                Madio.on_credit la ~dst:(Simnet.Node.id b) resume)
        done)
  in
  run_net net;
  assert_done h;
  check_int "all delivered" total !got;
  check_bool "no stalls for a polite sender" true (Madio.credit_stalls ma = 0);
  check_bool "credit-only messages flowed" true (Madio.credit_messages mb >= 1)

let test_vl_madio_credit_bounded () =
  let grid, a, b, san = grid_pair Simnet.Presets.myrinet2000 in
  let window = 32 * 1024 in
  Madio.set_credit_window (Padico.madio grid a san) window;
  Madio.set_credit_window (Padico.madio grid b san) window;
  let total = 256 * 1024 in
  let received = ref 0 in
  let intact = ref true in
  Padico.listen grid b ~port:4100 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"sink" (fun () ->
             let buf = Bb.create 8192 in
             let expect = ref 0 in
             while !received < total do
               match Vl.await (Vl.post_read vl buf) with
               | Vl.Done n ->
                 for i = 0 to n - 1 do
                   if Bb.get_u8 buf i <> (!expect + i) land 0xff then
                     intact := false
                 done;
                 expect := !expect + n;
                 received := !received + n;
                 (* Slow consumer: backpressure reaches the sender through
                    the credit window. *)
                 Proc.sleep (Simnet.Node.sim b) (Time.us 50)
               | _ -> Alcotest.fail "sink read failed"
             done)));
  let h =
    Padico.spawn grid a ~name:"src" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:b ~port:4100 in
        (match Vio.connect_wait vl with
         | Ok () -> ()
         | Error e -> failwith e);
        check_string "SAN picked madio" "madio" (Vl.driver_name vl);
        check_bool "write space bounded by credits" true
          (Vl.write_space vl <= window);
        let sent = ref 0 in
        while !sent < total do
          let n = min 8192 (total - !sent) in
          let chunk = Bb.create n in
          for i = 0 to n - 1 do Bb.set_u8 chunk i ((!sent + i) land 0xff) done;
          match Vio.try_write vl chunk with
          | `Ok k -> sent := !sent + k
          | `Again -> Vio.wait_writable vl
        done)
  in
  run_grid grid;
  assert_done h;
  check_int "all bytes through the credit window" total !received;
  check_bool "stream intact" true !intact

(* ---------- Resilient windows ---------- *)

let resilient_slow_consumer ~config ~total ~fault () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore
    (Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san" [ a; b ]);
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]);
  if fault then
    ignore
      (Padico_fault.Inject.apply (Padico.net grid)
         [ { Padico_fault.Plan.at_ns = Time.ms 2;
             action = Padico_fault.Plan.Link_down "san" } ]);
  Resilient.listen ~config grid b ~port:4200 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"producer" (fun () ->
             let sent = ref 0 in
             while !sent < total do
               let n = min 16_384 (total - !sent) in
               match Vio.try_write vl (Bb.create n) with
               | `Ok k -> sent := !sent + k
               | `Again -> Vio.wait_writable vl
             done)));
  let conn = Resilient.connect ~config grid ~src:a ~dst:b ~port:4200 in
  let cvl = Resilient.vl conn in
  let h =
    Padico.spawn grid a ~name:"consumer" (fun () ->
        (match Vl.await_connected cvl with
         | Ok () -> ()
         | Error m -> failwith ("connect: " ^ m));
        let buf = Bb.create 16_384 in
        let received = ref 0 in
        while !received < total do
          (match Vl.await (Vl.post_read cvl buf) with
           | Vl.Done n -> received := !received + n
           | Vl.Eof | Vl.Again -> failwith "premature eof"
           | Vl.Error m -> failwith ("read: " ^ m));
          if !received < total then
            Proc.sleep (Simnet.Node.sim a) (Time.us 500)
        done)
  in
  run_grid grid;
  assert_done h;
  Resilient.stats conn

let frame_slack = 65_536

let test_resilient_bounded_memory () =
  let total = 512 * 1024 in
  let rx_high = 64 * 1024 in
  let bounded =
    { Resilient.default_config with
      Resilient.tx_window = 128 * 1024; rx_high; rx_low = rx_high / 4 }
  in
  let unbounded =
    { Resilient.default_config with
      Resilient.tx_window = max_int; rx_high = max_int; rx_low = max_int }
  in
  let bst = resilient_slow_consumer ~config:bounded ~total ~fault:false () in
  check_bool "rx peak pinned at the watermark" true
    (bst.Resilient.rx_peak <= rx_high + frame_slack);
  check_bool "tx peak bounded by the window" true
    (bst.Resilient.tx_peak <= 128 * 1024);
  (* Without bounds the queue grows with the transfer: double the bytes,
     (roughly) double the peak. *)
  let u1 = resilient_slow_consumer ~config:unbounded ~total ~fault:false () in
  let u2 =
    resilient_slow_consumer ~config:unbounded ~total:(2 * total) ~fault:false
      ()
  in
  check_bool "unbounded dwarfs bounded" true
    (u1.Resilient.rx_peak > 2 * bst.Resilient.rx_peak);
  check_bool "unbounded grows with the transfer" true
    (u2.Resilient.rx_peak > u1.Resilient.rx_peak + total / 2)

let test_resilient_flow_fault_compose () =
  (* Backpressure engaged while the SAN dies mid-transfer: failover must
     still complete — the pause state is per-link and the new link starts
     fresh, so flow control cannot deadlock the redial. *)
  let rx_high = 64 * 1024 in
  let config =
    { Resilient.default_config with
      Resilient.tx_window = 128 * 1024; rx_high; rx_low = rx_high / 4 }
  in
  let st =
    resilient_slow_consumer ~config ~total:(512 * 1024) ~fault:true ()
  in
  check_bool "failed over" true (st.Resilient.switches >= 1);
  check_string "ended on the LAN" "sysio" st.Resilient.driver;
  check_bool "still bounded across the switch" true
    (st.Resilient.rx_peak <= rx_high + frame_slack)

(* ---------- QCheck properties ---------- *)

(* Random producer/consumer rate schedules over a small bounded pipe with
   a crypto adapter on top (watermarks engaged): no byte is lost or
   reordered, and every writer — blocking or EAGAIN-style — completes. *)
let prop_no_loss_no_reorder =
  QCheck.Test.make ~name:"random rate schedules: no loss, no reorder"
    ~count:12
    QCheck.(pair (int_bound 100_000) bool)
    (fun (seed, nonblock_writer) ->
      let rng = Random.State.make [| seed; 0x5eed |] in
      let total = 2_000 + Random.State.int rng 30_000 in
      let net = Simnet.Net.create () in
      let a = Simnet.Net.add_node net "a" in
      let pa, pb = bounded_pipe a ~cap:4096 in
      let key = Methods.Crypto.key_of_string "prop" in
      let wa = Vlink.Vl_crypto.wrap ~rx_high:2048 ~key pa in
      let wb = Vlink.Vl_crypto.wrap ~rx_high:2048 ~key pb in
      let writer =
        Simnet.Node.spawn a (fun () ->
            let sent = ref 0 in
            while !sent < total do
              let n = 1 + Random.State.int rng 3000 in
              let n = min n (total - !sent) in
              let chunk = Bb.create n in
              for i = 0 to n - 1 do
                Bb.set_u8 chunk i ((!sent + i) land 0xff)
              done;
              if nonblock_writer then begin
                match Vio.try_write wa chunk with
                | `Ok k -> sent := !sent + k
                | `Again -> Vio.wait_writable wa
              end
              else begin
                match Vl.await (Vl.post_write wa chunk) with
                | Vl.Done k -> sent := !sent + k
                | _ -> failwith "writer: unexpected completion"
              end;
              if Random.State.int rng 4 = 0 then
                Proc.sleep (Simnet.Node.sim a)
                  (Random.State.int rng (Time.us 40))
            done)
      in
      let holes = ref false in
      let reader =
        Simnet.Node.spawn a (fun () ->
            let got = ref 0 in
            let buf = Bb.create 4096 in
            while !got < total do
              (match Vl.await (Vl.post_read wb buf) with
               | Vl.Done n ->
                 for i = 0 to n - 1 do
                   if Bb.get_u8 buf i <> (!got + i) land 0xff then
                     holes := true
                 done;
                 got := !got + n
               | _ -> failwith "reader: unexpected completion");
              if Random.State.int rng 3 = 0 then
                Proc.sleep (Simnet.Node.sim a)
                  (Random.State.int rng (Time.us 120))
            done)
      in
      run_net net;
      (* Both sides completed (no livelock) and the byte stream is exact. *)
      (match Proc.result writer with
       | Some (Ok ()) -> ()
       | _ -> QCheck.Test.fail_report "writer did not complete");
      (match Proc.result reader with
       | Some (Ok ()) -> ()
       | _ -> QCheck.Test.fail_report "reader did not complete");
      not !holes)

let () =
  Alcotest.run "flow"
    [ ( "streamq",
        [ Alcotest.test_case "pop_exact spans chunks" `Quick
            test_pop_exact_spans_chunks;
          Alcotest.test_case "zero-length pushes" `Quick
            test_zero_length_pushes;
          Alcotest.test_case "pop edge cases" `Quick test_pop_edge_cases;
          Alcotest.test_case "watermarks" `Quick test_watermarks ] );
      ( "mailbox",
        [ Alcotest.test_case "capacity bounds + order" `Quick
            test_mailbox_capacity ] );
      ( "admission",
        [ Alcotest.test_case "defer, shed, readmit" `Quick
            test_admission_defer_readmit ] );
      ( "vl-eagain",
        [ Alcotest.test_case "nonblock Again + on_writable" `Quick
            test_nonblock_write_again;
          Alcotest.test_case "on_writable while connecting" `Quick
            test_on_writable_while_connecting;
          Alcotest.test_case "blocking writer completes" `Quick
            test_blocking_writer_completes ] );
      ( "madio-credit",
        [ Alcotest.test_case "soft enforcement + stalls" `Quick
            test_credit_soft_enforcement;
          Alcotest.test_case "credit-only for one-way flows" `Quick
            test_credit_only_message_one_way;
          Alcotest.test_case "vl_madio bounded end-to-end" `Quick
            test_vl_madio_credit_bounded ] );
      ( "resilient-window",
        [ Alcotest.test_case "bounded vs unbounded memory" `Quick
            test_resilient_bounded_memory;
          Alcotest.test_case "composes with failover" `Quick
            test_resilient_flow_fault_compose ] );
      Tutil.qsuite "properties" [ prop_no_loss_no_reorder ] ]
