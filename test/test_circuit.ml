module Bb = Engine.Bytebuf
module Ct = Circuit.Ct

(* Build a circuit through the Padico facade and check the bound adapters
   and messaging semantics. *)

let collect_msgs ct inbox =
  Ct.set_recv ct (fun inc ->
      let tag = Ct.unpack_int inc in
      let payload = Ct.unpack inc (Ct.remaining inc) in
      inbox := (Ct.incoming_src inc, tag, payload) :: !inbox)

let send ct ~dst ~tag payload =
  let out = Ct.begin_packing ct ~dst in
  Ct.pack_int out tag;
  Ct.pack out payload;
  Ct.end_packing out

let test_pack_unpack_cursor () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let cts = Padico.circuit grid ~name:"c" [ a; b ] in
  let seen = ref None in
  Ct.set_recv cts.(1) (fun inc ->
      let x = Ct.unpack_int inc in
      let s = Ct.unpack inc 5 in
      let y = Ct.unpack_int inc in
      Tutil.check_int "nothing left" 0 (Ct.remaining inc);
      seen := Some (x, Bb.to_string s, y));
  let out = Ct.begin_packing cts.(0) ~dst:1 in
  Ct.pack_int out 123;
  Ct.pack out (Bb.of_string "hello");
  Ct.pack_int out (-7);
  Ct.end_packing out;
  Tutil.run_grid grid;
  match !seen with
  | Some (123, "hello", -7) -> ()
  | _ -> Alcotest.fail "cursor mismatch"

let test_madio_adapter_on_san () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let cts = Padico.circuit grid ~name:"san" [ a; b ] in
  Tutil.check_string "link uses madio" "madio"
    (Ct.link_adapter_name cts.(0) ~dst:1);
  let inbox = ref [] in
  collect_msgs cts.(1) inbox;
  send cts.(0) ~dst:1 ~tag:9 (Tutil.pattern_buf ~seed:1 40_000);
  Tutil.run_grid grid;
  match !inbox with
  | [ (0, 9, payload) ] ->
    Tutil.check_int "payload size" 40_000 (Bb.length payload)
  | _ -> Alcotest.fail "expected one message"

let test_sysio_adapter_cross_paradigm () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.ethernet100 in
  let cts = Padico.circuit grid ~name:"lan" [ a; b ] in
  Tutil.check_string "link uses sysio" "sysio"
    (Ct.link_adapter_name cts.(0) ~dst:1);
  let inbox = ref [] in
  collect_msgs cts.(1) inbox;
  (* Message boundaries must survive the TCP byte stream. *)
  let m1 = Tutil.pattern_buf ~seed:2 10_000 in
  let m2 = Tutil.pattern_buf ~seed:3 35 in
  send cts.(0) ~dst:1 ~tag:1 m1;
  send cts.(0) ~dst:1 ~tag:2 m2;
  Tutil.run_grid grid;
  match List.rev !inbox with
  | [ (0, 1, p1); (0, 2, p2) ] ->
    Tutil.check_bool "first intact" true (Bb.equal p1 m1);
    Tutil.check_bool "second intact" true (Bb.equal p2 m2)
  | l -> Alcotest.failf "expected 2 messages, got %d" (List.length l)

let test_loopback_adapter_same_node () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  ignore (Padico.add_segment grid Simnet.Presets.ethernet100 [ a ]);
  let cts = Padico.circuit grid ~name:"self" [ a; a ] in
  Tutil.check_string "intra-node link" "loopback"
    (Ct.link_adapter_name cts.(0) ~dst:1);
  let inbox = ref [] in
  collect_msgs cts.(1) inbox;
  send cts.(0) ~dst:1 ~tag:5 (Bb.of_string "local");
  Tutil.run_grid grid;
  match !inbox with
  | [ (0, 5, p) ] -> Tutil.check_string "payload" "local" (Bb.to_string p)
  | _ -> Alcotest.fail "expected one local message"

let test_pstream_vlink_adapter_on_wan () =
  let prefs =
    { Selector.Prefs.default with Selector.Prefs.pstream_on_wan = true;
      cipher_untrusted = false }
  in
  let grid, a, b, _ = Tutil.grid_pair ~prefs Simnet.Presets.vthd in
  let cts = Padico.circuit grid ~name:"wan" [ a; b ] in
  Tutil.check_string "wan link over vlink (pstream)" "vlink"
    (Ct.link_adapter_name cts.(0) ~dst:1);
  let inbox = ref [] in
  collect_msgs cts.(1) inbox;
  let msg = Tutil.pattern_buf ~seed:4 500_000 in
  send cts.(0) ~dst:1 ~tag:3 msg;
  Tutil.run_grid grid;
  match !inbox with
  | [ (0, 3, p) ] -> Tutil.check_bool "big message intact" true (Bb.equal p msg)
  | _ -> Alcotest.fail "expected one message over the striped WAN link"

let test_mixed_adapters_one_circuit () =
  (* The paper: "a given instance of Circuit can use different adapters for
     different links": 2-cluster grid, SAN inside, WAN between. *)
  let grid, a1, a2, b1, _b2 =
    Tutil.two_clusters ~wan:Simnet.Presets.vthd ()
  in
  let cts = Padico.circuit grid ~name:"mixed" [ a1; a2; b1 ] in
  Tutil.check_string "intra-cluster is madio" "madio"
    (Ct.link_adapter_name cts.(0) ~dst:1);
  Tutil.check_string "inter-cluster is sysio" "sysio"
    (Ct.link_adapter_name cts.(0) ~dst:2);
  let inbox1 = ref [] and inbox2 = ref [] in
  collect_msgs cts.(1) inbox1;
  collect_msgs cts.(2) inbox2;
  send cts.(0) ~dst:1 ~tag:1 (Bb.of_string "fast");
  send cts.(0) ~dst:2 ~tag:2 (Bb.of_string "far");
  Tutil.run_grid grid;
  Tutil.check_int "san got it" 1 (List.length !inbox1);
  Tutil.check_int "wan got it" 1 (List.length !inbox2)

let test_bidirectional_traffic () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let cts = Padico.circuit grid ~name:"bidir" [ a; b ] in
  let in0 = ref [] and in1 = ref [] in
  collect_msgs cts.(0) in0;
  collect_msgs cts.(1) in1;
  for i = 1 to 5 do
    send cts.(0) ~dst:1 ~tag:i (Bb.create 100);
    send cts.(1) ~dst:0 ~tag:(10 + i) (Bb.create 100)
  done;
  Tutil.run_grid grid;
  Tutil.check_int "rank1 got 5" 5 (List.length !in1);
  Tutil.check_int "rank0 got 5" 5 (List.length !in0);
  Tutil.check_int "sent counters" 5 (Ct.messages_sent cts.(0));
  Tutil.check_int "recv counters" 5 (Ct.messages_received cts.(0))

let test_ordering_per_link () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let cts = Padico.circuit grid ~name:"order" [ a; b ] in
  let tags = ref [] in
  Ct.set_recv cts.(1) (fun inc -> tags := Ct.unpack_int inc :: !tags);
  for i = 1 to 20 do
    send cts.(0) ~dst:1 ~tag:i (Bb.create 8)
  done;
  Tutil.run_grid grid;
  Alcotest.(check (list int)) "fifo per link" (List.init 20 (fun i -> i + 1))
    (List.rev !tags)

let test_unbound_link_buffers () =
  (* Messages sent before set_link must be delivered after binding. *)
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let group = [| a; b |] in
  let c0 = Ct.create ~group ~rank:0 ~name:"late" in
  let c1 = Ct.create ~group ~rank:1 ~name:"late" in
  let inbox = ref [] in
  collect_msgs c1 inbox;
  send c0 ~dst:1 ~tag:77 (Bb.of_string "early");
  (* Bind afterwards. *)
  let m0 = Padico.madio grid a (Option.get (Simnet.Net.best_link (Padico.net grid) a b)) in
  let m1 = Padico.madio grid b (Option.get (Simnet.Net.best_link (Padico.net grid) a b)) in
  Circuit.Ct_madio.bind c0 m0 ~lchannel_id:900 ~ranks:[ 1 ];
  Circuit.Ct_madio.bind c1 m1 ~lchannel_id:900 ~ranks:[ 0 ];
  Tutil.run_grid grid;
  match !inbox with
  | [ (0, 77, p) ] -> Tutil.check_string "buffered then sent" "early" (Bb.to_string p)
  | _ -> Alcotest.fail "expected the buffered message"

let test_errors () =
  let grid, a, b, _ = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  let cts = Padico.circuit grid ~name:"err" [ a; b ] in
  Alcotest.check_raises "bad rank"
    (Invalid_argument "Ct.begin_packing: rank out of range") (fun () ->
      ignore (Ct.begin_packing cts.(0) ~dst:2));
  let out = Ct.begin_packing cts.(0) ~dst:1 in
  Ct.pack out (Bb.create 1);
  Ct.end_packing out;
  Alcotest.check_raises "double end"
    (Invalid_argument "Ct.end_packing: message already sent") (fun () ->
      Ct.end_packing out);
  (* A circuit created without binding adapters must say which link is
     unbound, not leak a bare Not_found. *)
  let bare = Ct.create ~group:[| a; b |] ~rank:0 ~name:"unbound" in
  Alcotest.check_raises "unbound link"
    (Invalid_argument
       "Ct.link_adapter_name: circuit unbound has no adapter bound for the \
        link from rank 0 to rank 1")
    (fun () -> ignore (Ct.link_adapter_name bare ~dst:1));
  Tutil.run_grid grid

let () =
  Alcotest.run "circuit"
    [ ("api",
       [ Alcotest.test_case "pack/unpack cursor" `Quick test_pack_unpack_cursor;
         Alcotest.test_case "errors" `Quick test_errors;
         Alcotest.test_case "unbound buffering" `Quick
           test_unbound_link_buffers ]);
      ("adapters",
       [ Alcotest.test_case "madio on SAN" `Quick test_madio_adapter_on_san;
         Alcotest.test_case "sysio cross-paradigm" `Quick
           test_sysio_adapter_cross_paradigm;
         Alcotest.test_case "loopback same node" `Quick
           test_loopback_adapter_same_node;
         Alcotest.test_case "pstream vlink on WAN" `Quick
           test_pstream_vlink_adapter_on_wan;
         Alcotest.test_case "mixed adapters" `Quick
           test_mixed_adapters_one_circuit ]);
      ("traffic",
       [ Alcotest.test_case "bidirectional" `Quick test_bidirectional_traffic;
         Alcotest.test_case "ordering" `Quick test_ordering_per_link ]);
    ]
