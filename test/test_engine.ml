module Bb = Engine.Bytebuf
module Sim = Engine.Sim
module Proc = Engine.Proc

(* ---------- Heap ---------- *)

let test_heap_basic () =
  let h = Engine.Heap.create () in
  Tutil.check_bool "empty" true (Engine.Heap.is_empty h);
  Engine.Heap.push h ~prio:5 "five";
  Engine.Heap.push h ~prio:1 "one";
  Engine.Heap.push h ~prio:3 "three";
  Tutil.check_int "length" 3 (Engine.Heap.length h);
  Tutil.check_int "peek" 1 (Option.get (Engine.Heap.peek_prio h));
  let order = List.init 3 (fun _ -> snd (Option.get (Engine.Heap.pop h))) in
  Alcotest.(check (list string)) "order" [ "one"; "three"; "five" ] order;
  Tutil.check_bool "empty again" true (Engine.Heap.is_empty h)

let test_heap_fifo_ties () =
  let h = Engine.Heap.create () in
  List.iter (fun v -> Engine.Heap.push h ~prio:7 v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> snd (Option.get (Engine.Heap.pop h))) in
  Alcotest.(check (list int)) "fifo on equal priorities" [ 1; 2; 3; 4 ] order

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in nondecreasing priority order"
    ~count:200
    QCheck.(list small_int)
    (fun prios ->
       let h = Engine.Heap.create () in
       List.iter (fun p -> Engine.Heap.push h ~prio:p p) prios;
       let rec drain acc =
         match Engine.Heap.pop h with
         | None -> List.rev acc
         | Some (p, _) -> drain (p :: acc)
       in
       let out = drain [] in
       out = List.sort compare prios)

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Engine.Rng.create 7 and b = Engine.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Engine.Rng.int64 a)
      (Engine.Rng.int64 b)
  done

let test_rng_bounds () =
  let r = Engine.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Engine.Rng.int r 10 in
    Tutil.check_bool "in range" true (v >= 0 && v < 10);
    let f = Engine.Rng.float r 2.5 in
    Tutil.check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_bool_bias () =
  let r = Engine.Rng.create 3 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Engine.Rng.bool r 0.25 then incr hits
  done;
  let ratio = float_of_int !hits /. float_of_int n in
  Tutil.check_bool "bernoulli(0.25) frequency" true
    (ratio > 0.22 && ratio < 0.28)

let test_rng_split_independent () =
  let r = Engine.Rng.create 9 in
  let s = Engine.Rng.split r in
  Tutil.check_bool "split streams differ" true
    (Engine.Rng.int64 r <> Engine.Rng.int64 s)

(* ---------- Sim ---------- *)

let test_sim_ordering () =
  let sim = Sim.create () in
  let trace = ref [] in
  Sim.at sim 30 (fun () -> trace := 30 :: !trace);
  Sim.at sim 10 (fun () -> trace := 10 :: !trace);
  Sim.at sim 20 (fun () -> trace := 20 :: !trace);
  Sim.run sim;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !trace);
  Tutil.check_int "clock at last event" 30 (Sim.now sim)

let test_sim_same_time_fifo () =
  let sim = Sim.create () in
  let trace = ref [] in
  for i = 1 to 5 do
    Sim.at sim 42 (fun () -> trace := i :: !trace)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo at same instant" [ 1; 2; 3; 4; 5 ]
    (List.rev !trace)

let test_sim_until () =
  let sim = Sim.create () in
  let fired = ref [] in
  Sim.at sim 100 (fun () -> fired := 100 :: !fired);
  Sim.at sim 200 (fun () -> fired := 200 :: !fired);
  Sim.run sim ~until:150;
  Alcotest.(check (list int)) "only first fired" [ 100 ] !fired;
  Tutil.check_int "clock clamped" 150 (Sim.now sim);
  Sim.run sim;
  Alcotest.(check (list int)) "rest fired on resume" [ 200; 100 ] !fired

let test_sim_past_raises () =
  let sim = Sim.create () in
  Sim.at sim 50 (fun () ->
      Alcotest.check_raises "past scheduling rejected"
        (Invalid_argument "Sim.at: time 10 is in the past (now 50)")
        (fun () -> Sim.at sim 10 ignore));
  Sim.run sim

let test_sim_nested_scheduling () =
  let sim = Sim.create () in
  let hits = ref 0 in
  Sim.after sim 10 (fun () ->
      Sim.after sim 10 (fun () ->
          incr hits;
          Tutil.check_int "nested time" 20 (Sim.now sim)));
  Sim.run sim;
  Tutil.check_int "nested fired" 1 !hits

(* Exit-clock discipline (see Sim.run's doc): every exit is monotone.
   The old until-branch assigned the clock unconditionally, so resuming a
   stopped simulator with a smaller [until] rewound virtual time. *)
let test_sim_exit_clock_monotone () =
  let sim = Sim.create () in
  Sim.at sim 100 (fun () -> Sim.stop sim);
  Sim.at sim 300 (fun () -> ());
  Sim.run sim;
  Tutil.check_int "stop freezes at the stopping event" 100 (Sim.now sim);
  Sim.run sim ~until:50;
  Tutil.check_int "until below the clock does not rewind" 100 (Sim.now sim);
  Sim.run sim ~until:200;
  Tutil.check_int "until ahead advances the idle clock" 200 (Sim.now sim);
  Sim.run sim ~until:150;
  Tutil.check_int "still no rewind" 200 (Sim.now sim);
  Sim.run sim;
  Tutil.check_int "drained at the last event" 300 (Sim.now sim)

(* Padico.reset (Lifecycle) must drop undelivered events: a stopped
   scenario's stale timers would otherwise fire into the next scenario's
   registries through any shared clock. *)
let test_reset_clears_pending_events () =
  let sim = Sim.create () in
  Sim.after sim 10 (fun () -> ());
  Sim.after sim 20 (fun () -> ());
  Tutil.check_int "events queued" 2 (Sim.pending sim);
  Engine.Lifecycle.reset_registries ();
  Tutil.check_int "reset dropped undelivered events" 0 (Sim.pending sim)

let test_sim_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Sim.after sim 1 (fun () ->
        incr count;
        if !count = 3 then Sim.stop sim)
  done;
  Sim.run sim;
  Tutil.check_int "stopped after 3" 3 !count;
  Sim.run sim;
  Tutil.check_int "resumable" 10 !count

(* ---------- Proc ---------- *)

let test_proc_sleep () =
  let sim = Sim.create () in
  let t_end = ref 0 in
  let h =
    Proc.spawn sim (fun () ->
        Proc.sleep sim 100;
        Proc.sleep sim 200;
        t_end := Sim.now sim)
  in
  Sim.run sim;
  Tutil.assert_done h;
  Tutil.check_int "slept 300" 300 !t_end

let test_proc_ivar () =
  let sim = Sim.create () in
  let iv = Proc.Ivar.create () in
  let got = ref 0 in
  let reader =
    Proc.spawn sim (fun () -> got := Proc.Ivar.read iv)
  in
  let _writer =
    Proc.spawn sim (fun () ->
        Proc.sleep sim 50;
        Proc.Ivar.fill iv 42)
  in
  Sim.run sim;
  Tutil.assert_done reader;
  Tutil.check_int "ivar value" 42 !got;
  Tutil.check_bool "filled" true (Proc.Ivar.is_filled iv);
  Alcotest.check_raises "double fill"
    (Invalid_argument "Ivar.fill: already filled") (fun () ->
      Proc.Ivar.fill iv 1)

let test_proc_ivar_read_after_fill () =
  let sim = Sim.create () in
  let iv = Proc.Ivar.create () in
  Proc.Ivar.fill iv "x";
  let got = ref "" in
  let h = Proc.spawn sim (fun () -> got := Proc.Ivar.read iv) in
  Sim.run sim;
  Tutil.assert_done h;
  Tutil.check_string "immediate read" "x" !got

let test_proc_mailbox () =
  let sim = Sim.create () in
  let mb = Proc.Mailbox.create () in
  let received = ref [] in
  let consumer =
    Proc.spawn sim (fun () ->
        for _ = 1 to 3 do
          received := Proc.Mailbox.recv mb :: !received
        done)
  in
  let _producer =
    Proc.spawn sim (fun () ->
        Proc.Mailbox.send mb 1;
        Proc.sleep sim 10;
        Proc.Mailbox.send mb 2;
        Proc.Mailbox.send mb 3)
  in
  Sim.run sim;
  Tutil.assert_done consumer;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !received)

let test_proc_semaphore_mutex () =
  let sim = Sim.create () in
  let sem = Proc.Semaphore.create 1 in
  let inside = ref 0 in
  let max_inside = ref 0 in
  let worker () =
    Proc.Semaphore.acquire sem;
    incr inside;
    if !inside > !max_inside then max_inside := !inside;
    Proc.sleep sim 10;
    decr inside;
    Proc.Semaphore.release sem
  in
  let hs = List.init 5 (fun i -> Proc.spawn sim ~name:(string_of_int i) worker) in
  Sim.run sim;
  List.iter Tutil.assert_done hs;
  Tutil.check_int "mutual exclusion" 1 !max_inside

let test_proc_join () =
  let sim = Sim.create () in
  let child =
    Proc.spawn sim (fun () -> Proc.sleep sim 100)
  in
  let after_join = ref 0 in
  let parent =
    Proc.spawn sim (fun () ->
        Proc.join sim child;
        after_join := Sim.now sim)
  in
  Sim.run sim;
  Tutil.assert_done parent;
  Tutil.check_int "joined after child" 100 !after_join

let test_proc_join_error_propagates () =
  let sim = Sim.create () in
  let child = Proc.spawn sim (fun () -> failwith "boom") in
  let caught = ref false in
  let parent =
    Proc.spawn sim (fun () ->
        try Proc.join sim child with Failure _ -> caught := true)
  in
  Sim.run sim;
  Tutil.assert_done parent;
  Tutil.check_bool "exception re-raised in joiner" true !caught

(* ---------- Bytebuf ---------- *)

let test_bytebuf_sub_and_blit () =
  let b = Tutil.pattern_buf ~seed:1 64 in
  let s = Bb.sub b 16 32 in
  Tutil.check_int "sub length" 32 (Bb.length s);
  Tutil.check_bool "sub shares data" true (Bb.get s 0 = Bb.get b 16);
  let d = Bb.create 32 in
  Bb.blit ~src:s ~src_off:0 ~dst:d ~dst_off:0 ~len:32;
  Tutil.check_bool "blit copies" true (Bb.equal s d);
  Alcotest.check_raises "oob sub"
    (Invalid_argument "Bytebuf.sub: off=60 len=10 in buffer of 64") (fun () ->
      ignore (Bb.sub b 60 10))

let test_bytebuf_concat_split () =
  let a = Tutil.pattern_buf ~seed:2 10 in
  let b = Tutil.pattern_buf ~seed:3 20 in
  let c = Bb.concat [ a; b ] in
  Tutil.check_int "concat length" 30 (Bb.length c);
  let x, y = Bb.split c 10 in
  Tutil.check_bool "split left" true (Bb.equal a x);
  Tutil.check_bool "split right" true (Bb.equal b y)

let test_bytebuf_ints () =
  let b = Bb.create 32 in
  Bb.set_u16 b 0 0xBEEF;
  Bb.set_u32 b 4 0xDEAD1234;
  Bb.set_i64 b 8 (-123456789L);
  Bb.set_u8 b 16 0xAB;
  Tutil.check_int "u16" 0xBEEF (Bb.get_u16 b 0);
  Tutil.check_int "u32" 0xDEAD1234 (Bb.get_u32 b 4);
  Alcotest.(check int64) "i64" (-123456789L) (Bb.get_i64 b 8);
  Tutil.check_int "u8" 0xAB (Bb.get_u8 b 16)

let test_bytebuf_copy_counter () =
  Bb.reset_copy_counter ();
  let a = Bb.create 100 in
  let b = Bb.copy a in
  ignore b;
  Tutil.check_int "counted copy" 100 (Bb.copies_performed ());
  let c = Bb.create 100 in
  Bb.blit_dma ~src:a ~src_off:0 ~dst:c ~dst_off:0 ~len:100;
  Tutil.check_int "dma not counted" 100 (Bb.copies_performed ())

let prop_bytebuf_string_roundtrip =
  QCheck.Test.make ~name:"of_string/to_string roundtrip" ~count:200
    QCheck.string (fun s -> Bb.to_string (Bb.of_string s) = s)

let prop_bytebuf_checksum_sensitive =
  QCheck.Test.make ~name:"checksum changes when a byte changes" ~count:100
    QCheck.(string_of_size Gen.(int_range 1 200))
    (fun s ->
       let b = Bb.of_string s in
       let before = Bb.checksum b in
       let i = String.length s / 2 in
       Bb.set_u8 b i (Bb.get_u8 b i lxor 0x5a);
       Bb.checksum b <> before)

(* ---------- Stats ---------- *)

let test_stats_summary () =
  let s = Engine.Stats.Summary.create () in
  List.iter (Engine.Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Tutil.check_int "n" 4 (Engine.Stats.Summary.n s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Engine.Stats.Summary.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Engine.Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Engine.Stats.Summary.max s);
  Tutil.check_bool "stddev" true
    (abs_float (Engine.Stats.Summary.stddev s -. 1.2909944487) < 1e-6)

let test_stats_histogram () =
  let h = Engine.Stats.Histogram.create () in
  List.iter (Engine.Stats.Histogram.add h) [ 1; 2; 4; 8; 1000 ];
  Tutil.check_int "count" 5 (Engine.Stats.Histogram.count h);
  Tutil.check_bool "p50 small" true (Engine.Stats.Histogram.percentile h 0.5 < 8);
  Tutil.check_bool "p100 covers max" true
    (Engine.Stats.Histogram.percentile h 1.0 >= 1000)

(* Bucket i of the histogram holds values of bit-width i, i.e. [2^(i-1),
   2^i); [percentile] answers the inclusive upper bound 2^i - 1 of the
   bucket reaching the requested rank. These tests pin that contract at the
   boundaries. *)
let test_stats_histogram_powers_of_two () =
  let module H = Engine.Stats.Histogram in
  (* A power of two 2^k has bit-width k+1, so its reported upper bound is
     2^(k+1) - 1 — one bucket above 2^k - 1. *)
  List.iter
    (fun k ->
       let h = H.create () in
       H.add h (1 lsl k);
       Tutil.check_int
         (Printf.sprintf "p100 of singleton 2^%d" k)
         ((1 lsl (k + 1)) - 1)
         (H.percentile h 1.0))
    [ 0; 1; 4; 10; 20 ];
  (* One below a power of two stays in the lower bucket: its bound is
     exactly itself. *)
  let h = H.create () in
  H.add h 1023;
  Tutil.check_int "p100 of 1023" 1023 (H.percentile h 1.0);
  (* Zero has bit-width 0: bucket 0, bound 0. *)
  let h = H.create () in
  H.add h 0;
  Tutil.check_int "p100 of 0" 0 (H.percentile h 1.0);
  (* Negative values are clamped to bucket 0 rather than crashing. *)
  let h = H.create () in
  H.add h (-5);
  Tutil.check_int "negative clamps to 0" 0 (H.percentile h 1.0)

let test_stats_histogram_empty () =
  let module H = Engine.Stats.Histogram in
  let h = H.create () in
  Tutil.check_int "count" 0 (H.count h);
  Tutil.check_int "p0" 0 (H.percentile h 0.0);
  Tutil.check_int "p50" 0 (H.percentile h 0.5);
  Tutil.check_int "p100" 0 (H.percentile h 1.0);
  Tutil.check_string "pp prints nothing" ""
    (Format.asprintf "%a" H.pp h)

let test_stats_histogram_p0_p100 () =
  let module H = Engine.Stats.Histogram in
  let h = H.create () in
  List.iter (H.add h) [ 1; 6; 1000 ];
  (* q = 0 still answers the lowest occupied bucket (rank clamps to 1). *)
  Tutil.check_int "p0 = first bucket bound" 1 (H.percentile h 0.0);
  (* q = 1 answers the highest occupied bucket: 1000 has bit-width 10. *)
  Tutil.check_int "p100 = last bucket bound" 1023 (H.percentile h 1.0);
  (* Ranks are inclusive: with 3 samples, q = 1/3 is the first sample. *)
  Tutil.check_int "p33 inclusive" 1 (H.percentile h (1.0 /. 3.0));
  Tutil.check_int "p34 next bucket" 7 (H.percentile h 0.34)

let test_stats_histogram_pp () =
  let module H = Engine.Stats.Histogram in
  let h = H.create () in
  List.iter (H.add h) [ 1; 3; 3; 1000 ];
  let out = Format.asprintf "%a" H.pp h in
  (* Buckets print as exclusive upper bounds with their counts. *)
  Tutil.check_string "bucket lines" "[<2] 1\n[<4] 2\n[<1024] 1\n" out

let test_stats_bandwidth () =
  Alcotest.(check (float 1e-9)) "100MB in 1s" 100.0
    (Engine.Stats.bandwidth_mb_s ~bytes_transferred:100_000_000
       ~elapsed_ns:1_000_000_000)

let () =
  Alcotest.run "engine"
    [ ("heap",
       [ Alcotest.test_case "basic order" `Quick test_heap_basic;
         Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties ]);
      Tutil.qsuite "heap-props" [ prop_heap_sorts ];
      ("rng",
       [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
         Alcotest.test_case "bounds" `Quick test_rng_bounds;
         Alcotest.test_case "bernoulli bias" `Quick test_rng_bool_bias;
         Alcotest.test_case "split" `Quick test_rng_split_independent ]);
      ("sim",
       [ Alcotest.test_case "ordering" `Quick test_sim_ordering;
         Alcotest.test_case "same-time fifo" `Quick test_sim_same_time_fifo;
         Alcotest.test_case "until" `Quick test_sim_until;
         Alcotest.test_case "past raises" `Quick test_sim_past_raises;
         Alcotest.test_case "nested" `Quick test_sim_nested_scheduling;
         Alcotest.test_case "stop/resume" `Quick test_sim_stop;
         Alcotest.test_case "exit clock monotone" `Quick
           test_sim_exit_clock_monotone;
         Alcotest.test_case "reset clears events" `Quick
           test_reset_clears_pending_events ]);
      ("proc",
       [ Alcotest.test_case "sleep" `Quick test_proc_sleep;
         Alcotest.test_case "ivar" `Quick test_proc_ivar;
         Alcotest.test_case "ivar pre-filled" `Quick
           test_proc_ivar_read_after_fill;
         Alcotest.test_case "mailbox" `Quick test_proc_mailbox;
         Alcotest.test_case "semaphore mutex" `Quick test_proc_semaphore_mutex;
         Alcotest.test_case "join" `Quick test_proc_join;
         Alcotest.test_case "join error" `Quick test_proc_join_error_propagates
       ]);
      ("bytebuf",
       [ Alcotest.test_case "sub/blit" `Quick test_bytebuf_sub_and_blit;
         Alcotest.test_case "concat/split" `Quick test_bytebuf_concat_split;
         Alcotest.test_case "integer accessors" `Quick test_bytebuf_ints;
         Alcotest.test_case "copy counter" `Quick test_bytebuf_copy_counter ]);
      Tutil.qsuite "bytebuf-props"
        [ prop_bytebuf_string_roundtrip; prop_bytebuf_checksum_sensitive ];
      ("stats",
       [ Alcotest.test_case "summary" `Quick test_stats_summary;
         Alcotest.test_case "histogram" `Quick test_stats_histogram;
         Alcotest.test_case "histogram powers of two" `Quick
           test_stats_histogram_powers_of_two;
         Alcotest.test_case "histogram empty" `Quick test_stats_histogram_empty;
         Alcotest.test_case "histogram p0/p100" `Quick
           test_stats_histogram_p0_p100;
         Alcotest.test_case "histogram pp" `Quick test_stats_histogram_pp;
         Alcotest.test_case "bandwidth" `Quick test_stats_bandwidth ]);
    ]
