module Bb = Engine.Bytebuf
module Mad = Madeleine.Mad
module Madio = Netaccess.Madio
module Sysio = Netaccess.Sysio
module Na = Netaccess.Na_core
module Tcp = Drivers.Tcp

let madio_pair () =
  let net, a, b, seg = Tutil.pair Simnet.Presets.myrinet2000 in
  (net, a, b, Madio.init (Mad.init seg a), Madio.init (Mad.init seg b))

(* ---------- MadIO ---------- *)

let test_many_logical_channels () =
  (* The point of MadIO: 2 hardware channels, arbitrarily many logical. *)
  let net, _a, b, ma, mb = madio_pair () in
  let n = 50 in
  let received = Array.make n 0 in
  for i = 0 to n - 1 do
    let lc = Madio.open_lchannel mb ~id:i in
    Madio.set_recv lc (fun ~src:_ buf ->
        received.(Bb.get_u8 buf 0) <- received.(Bb.get_u8 buf 0) + 1)
  done;
  Tutil.check_int "all open" n (Madio.lchannels_open mb);
  for i = 0 to n - 1 do
    let lc = Madio.open_lchannel ma ~id:i in
    let msg = Bb.create 4 in
    Bb.set_u8 msg 0 i;
    Madio.send lc ~dst:(Simnet.Node.id b) msg
  done;
  Tutil.run_net net;
  Array.iteri
    (fun i c -> Tutil.check_int (Printf.sprintf "channel %d" i) 1 c)
    received

let test_combined_and_separate_headers_both_deliver () =
  let deliver combining =
    let net, _a, b, ma, mb = madio_pair () in
    Madio.set_header_combining ma combining;
    let la = Madio.open_lchannel ma ~id:3 in
    let lb = Madio.open_lchannel mb ~id:3 in
    let msg = Tutil.pattern_buf ~seed:9 5_000 in
    let ok = ref false in
    Madio.set_recv lb (fun ~src buf -> ok := src = 0 && Bb.equal buf msg);
    Madio.send la ~dst:(Simnet.Node.id b) msg;
    Tutil.run_net net;
    !ok
  in
  Tutil.check_bool "combined" true (deliver true);
  Tutil.check_bool "separate (ablation)" true (deliver false)

let test_combining_uses_fewer_messages () =
  let wire_messages combining =
    let net, a, b, ma, mb = madio_pair () in
    Madio.set_header_combining ma combining;
    let la = Madio.open_lchannel ma ~id:1 in
    let lb = Madio.open_lchannel mb ~id:1 in
    Madio.set_recv lb (fun ~src:_ _ -> ());
    for _ = 1 to 10 do
      Madio.send la ~dst:(Simnet.Node.id b) (Bb.create 32)
    done;
    Tutil.run_net net;
    let seg = List.hd (Simnet.Net.links_between net a b) in
    Simnet.Segment.frames_sent seg
  in
  let combined = wire_messages true in
  let separate = wire_messages false in
  Tutil.check_bool "separate mode sends twice the frames" true
    (separate >= 2 * combined)

let test_sendv_iovec () =
  let net, _a, b, ma, mb = madio_pair () in
  let la = Madio.open_lchannel ma ~id:2 in
  let lb = Madio.open_lchannel mb ~id:2 in
  let p1 = Tutil.pattern_buf ~seed:1 100 in
  let p2 = Tutil.pattern_buf ~seed:2 200 in
  let ok = ref false in
  Madio.set_recv lb (fun ~src:_ buf -> ok := Bb.equal buf (Bb.concat [ p1; p2 ]));
  Madio.sendv la ~dst:(Simnet.Node.id b) [ p1; p2 ];
  Tutil.run_net net;
  Tutil.check_bool "iovec gathered" true !ok

let test_lchannel_reuse_rejected () =
  let _net, _a, _b, ma, _mb = madio_pair () in
  let _l = Madio.open_lchannel ma ~id:5 in
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Madio.open_lchannel: channel 5 already open") (fun () ->
      ignore (Madio.open_lchannel ma ~id:5))

(* ---------- Na_core ---------- *)

let test_dispatcher_runs_posted_work () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let core = Na.get a in
  let ran = ref [] in
  Na.post core Na.Madio_work (fun () -> ran := `M :: !ran);
  Na.post core Na.Sysio_work (fun () -> ran := `S :: !ran);
  Tutil.run_net net;
  Tutil.check_int "both dispatched" 2 (List.length !ran);
  Tutil.check_int "madio count" 1 (Na.dispatched core Na.Madio_work);
  Tutil.check_int "sysio count" 1 (Na.dispatched core Na.Sysio_work)

let test_dispatcher_policy_validation () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let core = Na.get a in
  Alcotest.check_raises "bad quantum"
    (Invalid_argument "Na_core.set_policy: quanta must be >= 1") (fun () ->
      Na.set_policy core (Na.Static { Na.madio_quantum = 0; sysio_quantum = 1 }));
  Alcotest.check_raises "bad ewma weight"
    (Invalid_argument "Na_core.set_policy: ewma_weight must be in (0, 1]")
    (fun () ->
       Na.set_policy core
         (Na.Adaptive { Na.default_adaptive with Na.ewma_weight = 0.0 }));
  Alcotest.check_raises "bad quantum range"
    (Invalid_argument "Na_core.set_policy: need 1 <= min_quantum <= max_quantum")
    (fun () ->
       Na.set_policy core
         (Na.Adaptive { Na.default_adaptive with Na.max_quantum = 0 }));
  Alcotest.check_raises "bad scan gap"
    (Invalid_argument "Na_core.set_policy: max_scan_gap must be >= 1")
    (fun () ->
       Na.set_policy core
         (Na.Adaptive { Na.default_adaptive with Na.max_scan_gap = 0 }))

let test_dispatcher_survives_exceptions () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let core = Na.get a in
  let ran = ref false in
  Na.post core Na.Madio_work (fun () -> failwith "handler bug");
  Na.post core Na.Madio_work (fun () -> ran := true);
  Tutil.run_net net;
  Tutil.check_bool "later work still runs" true !ran

let test_policy_interleaving () =
  (* With quanta (1, 4), a backlog of both kinds should dispatch roughly
     1:4 over the first rounds. *)
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let core = Na.get a in
  Na.set_policy core (Na.Static { Na.madio_quantum = 1; sysio_quantum = 4 });
  let order = ref [] in
  for _ = 1 to 8 do
    Na.post core Na.Madio_work (fun () -> order := `M :: !order)
  done;
  for _ = 1 to 8 do
    Na.post core Na.Sysio_work (fun () -> order := `S :: !order)
  done;
  Tutil.run_net net;
  (* First round: 1 M then 4 S. *)
  (match List.rev !order with
   | `M :: `S :: `S :: `S :: `S :: `M :: _ -> ()
   | _ -> Alcotest.fail "unexpected interleaving");
  Tutil.check_int "all dispatched" 16 (List.length !order)

(* ---------- SysIO ---------- *)

let test_sysio_connect_listen () =
  let net, a, b, seg = Tutil.pair Simnet.Presets.ethernet100 in
  let sa = Sysio.get a and sb = Sysio.get b in
  let stack_a = Sysio.stack_on sa seg in
  let stack_b = Sysio.stack_on sb seg in
  let server_got = ref "" in
  Sysio.listen sb stack_b ~port:80 (fun conn ->
      Sysio.watch sb conn (fun ev ->
          if ev = Tcp.Readable then
            match Sysio.read conn ~max:100 with
            | Some buf -> server_got := !server_got ^ Bb.to_string buf
            | None -> ()));
  let established = ref false in
  let conn =
    Sysio.connect sa stack_a ~dst:(Simnet.Node.id b) ~port:80 (fun conn ev ->
        if ev = Tcp.Established then begin
          established := true;
          ignore (Sysio.write conn (Bb.of_string "hello"))
        end)
  in
  ignore conn;
  Tutil.run_net net;
  Tutil.check_bool "established through dispatcher" true !established;
  Tutil.check_string "data through dispatcher" "hello" !server_got;
  Tutil.check_bool "events were dispatched" true (Sysio.events_dispatched sb > 0)

let () =
  Alcotest.run "netaccess"
    [ ("madio",
       [ Alcotest.test_case "many logical channels" `Quick
           test_many_logical_channels;
         Alcotest.test_case "combined+separate deliver" `Quick
           test_combined_and_separate_headers_both_deliver;
         Alcotest.test_case "combining halves frames" `Quick
           test_combining_uses_fewer_messages;
         Alcotest.test_case "sendv iovec" `Quick test_sendv_iovec;
         Alcotest.test_case "duplicate lchannel" `Quick
           test_lchannel_reuse_rejected ]);
      ("core",
       [ Alcotest.test_case "dispatch" `Quick test_dispatcher_runs_posted_work;
         Alcotest.test_case "policy validation" `Quick
           test_dispatcher_policy_validation;
         Alcotest.test_case "exception isolation" `Quick
           test_dispatcher_survives_exceptions;
         Alcotest.test_case "interleaving policy" `Quick
           test_policy_interleaving ]);
      ("sysio",
       [ Alcotest.test_case "connect/listen/watch" `Quick
           test_sysio_connect_listen ]);
    ]
