(* Edge-gateway capacity machinery (see DESIGN.md section 15): the
   readiness-queue wakeup protocol under random interest churn, the
   timewheel firing-order contract against the reference heap, the
   idle-connection byte-budget pin, and the Hostio fd-ceiling guard. *)

module Bb = Engine.Bytebuf
module Sim = Engine.Sim
module Time = Engine.Time
module Node = Simnet.Node
module Na = Netaccess.Na_core
module Sysio = Netaccess.Sysio
module Tcp = Drivers.Tcp
module Timewheel = Padico_fault.Timewheel

(* ---------- readiness-queue protocol ---------- *)

(* Model: [nsrc] interest slots, each holding a live source (or none). A
   random schedule of Mark / Unregister / Re-register ops runs against a
   real dispatcher in [Ready_queue] mode. Each model slot counts events
   not yet drained; the source's drain consumes them all (the per-
   connection queue drain). Invariants, checked after quiescence:

   - no lost wakeup: every live slot has zero undrained events — a mark
     always leads to a drain, including marks that coalesced while the
     source was already queued;
   - no duplicate dispatch: a drain never finds zero pending events —
     the [s_queued] flag admits at most one ready-list entry per source;
   - no ghost dispatch: a drain never runs for an unregistered slot;
   - the ready list itself is empty once the grid quiesces. *)

let nsrc = 8

let readiness_holds ops =
  let grid = Padico.create () in
  let n = Padico.add_node grid "n" in
  let core = Na.get n in
  Na.set_io_model core Na.Ready_queue;
  let pending = Array.make nsrc 0 in
  let alive = Array.make nsrc false in
  let spurious = ref 0 and ghost = ref 0 in
  let mk_src i =
    Na.register_source core ~drain:(fun () ->
        if not alive.(i) then incr ghost
        else if pending.(i) = 0 then incr spurious
        else pending.(i) <- 0)
  in
  let srcs = Array.init nsrc mk_src in
  Array.fill alive 0 nsrc true;
  let t = ref 0 in
  List.iter
    (fun (x, y) ->
       let i = x mod nsrc in
       (* Same-timestamp bursts (delay 0) stress mark coalescing. *)
       t := !t + 700 * (y mod 4);
       Sim.after (Padico.sim grid) !t (fun () ->
           match y mod 3 with
           | 0 ->
             (* Fire: only live interests owe a drain. *)
             if alive.(i) then pending.(i) <- pending.(i) + 1;
             Na.mark_ready core srcs.(i)
           | 1 ->
             (* Remove interest: undelivered events are not owed, like
                closing an fd with events still queued. *)
             if alive.(i) then begin
               Na.unregister_source core srcs.(i);
               alive.(i) <- false;
               pending.(i) <- 0
             end
           | _ ->
             (* Replace interest with a fresh source on the same slot. *)
             if alive.(i) then begin
               Na.unregister_source core srcs.(i);
               pending.(i) <- 0
             end;
             srcs.(i) <- mk_src i;
             alive.(i) <- true))
    ops;
  Tutil.run_grid grid;
  let lost = Array.exists (fun p -> p > 0) pending in
  (not lost) && !spurious = 0 && !ghost = 0 && Na.ready_depth core = 0

let prop_readiness =
  QCheck.Test.make
    ~name:"ready queue: no lost wakeup, no duplicate dispatch" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 150) (pair small_nat small_nat))
    readiness_holds

(* ---------- timewheel vs heap firing order ---------- *)

(* The wheel's contract: a timer armed for [after_ns] fires at that
   deadline rounded {e up} to the next slot boundary (never early), and
   the {e relative} firing order is the one a per-timer event heap would
   give — (requested deadline, arm order), even for timers sharing a
   slot. Cancelled timers must not fire on either side. *)

let slot = 65_536

let round_up d = (d + slot - 1) / slot * slot

let wheel_matches_heap spec =
  let wheel_fired = ref [] in
  let sim_w = Sim.create () in
  let wheel = Timewheel.create ~slot_ns:slot sim_w in
  let timers =
    List.mapi
      (fun id (delay, _) ->
         Timewheel.arm wheel ~after_ns:delay (fun () ->
             wheel_fired := (id, Sim.now sim_w) :: !wheel_fired))
      spec
  in
  List.iteri
    (fun id (_, cancel) ->
       if cancel then Timewheel.cancel (List.nth timers id))
    spec;
  Sim.run sim_w;
  let heap_fired = ref [] in
  let sim_h = Sim.create () in
  List.iteri
    (fun id (delay, cancel) ->
       if not cancel then
         Sim.after sim_h delay (fun () -> heap_fired := id :: !heap_fired))
    spec;
  Sim.run sim_h;
  let wheel_order = List.rev_map fst !wheel_fired in
  let never_early =
    List.for_all
      (fun (id, at) -> at = round_up (fst (List.nth spec id)))
      !wheel_fired
  in
  wheel_order = List.rev !heap_fired && never_early

let prop_wheel_order =
  QCheck.Test.make ~name:"timewheel fires in heap order (slot-rounded)"
    ~count:100
    QCheck.(list_of_size Gen.(int_range 0 40)
              (pair (int_range 1 500_000) bool))
    wheel_matches_heap

(* ---------- idle-connection byte budget ---------- *)

(* The regression pin behind `padico_cli flow --budget` and E15's
   bytes-per-connection column: an established connection that has never
   written costs exactly [Tcp.conn_overhead_bytes] — the send ring is
   lazy, so 100k idle connections are 100k * 512 B, not 100k * sndbuf.
   After every connection closes, edge-mode reaping returns both stacks
   to zero resident bytes. *)

let test_idle_budget () =
  let idle = 32 in
  let grid = Padico.create () in
  let s = Padico.add_node grid "s" in
  let c = Padico.add_node grid "c" in
  let seg =
    Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ s; c ]
  in
  let sio_s = Sysio.get s and sio_c = Sysio.get c in
  Sysio.set_edge sio_s;
  Sysio.set_edge sio_c;
  let st_s = Sysio.stack_on sio_s seg and st_c = Sysio.stack_on sio_c seg in
  Sysio.listen ~sndbuf:4096 ~rcvbuf:4096 sio_s st_s ~port:9500 (fun conn ->
      Sysio.watch sio_s conn (function
        | Tcp.Peer_closed ->
          Sysio.unwatch sio_s conn;
          Sysio.close conn
        | _ -> ());
      if Sysio.peer_closed conn then begin
        Sysio.unwatch sio_s conn;
        Sysio.close conn
      end);
  let conns =
    List.init idle (fun _ ->
        Sysio.connect ~sndbuf:4096 ~rcvbuf:4096 sio_c st_c ~dst:(Node.id s)
          ~port:9500 (fun _ _ -> ()))
  in
  Tutil.run_grid grid;
  Tutil.check_int "server holds every idle connection" idle
    (Sysio.conn_count sio_s);
  Tutil.check_int "idle server conn = overhead floor, no eager buffers"
    (idle * Tcp.conn_overhead_bytes)
    (Sysio.bytes_resident sio_s);
  Tutil.check_int "idle client conn = overhead floor"
    (idle * Tcp.conn_overhead_bytes)
    (Sysio.bytes_resident sio_c);
  List.iter Sysio.close conns;
  Tutil.run_grid grid;
  Tutil.check_int "all server conns reaped after close" 0
    (Sysio.conn_count sio_s);
  Tutil.check_int "server resident bytes return to zero" 0
    (Sysio.bytes_resident sio_s);
  Tutil.check_int "client resident bytes return to zero" 0
    (Sysio.bytes_resident sio_c);
  Tutil.check_bool "reap counter saw the churn" true
    (Sysio.conns_reaped sio_s >= idle)

(* ---------- Hostio fd ceiling ---------- *)

(* select() silently corrupts memory past FD_SETSIZE; the loop must
   refuse such descriptors loudly instead. *)

let test_fd_guard () =
  let loop = Hostio.Loop.create () in
  let bad : Unix.file_descr = Obj.magic 2000 in
  (match Hostio.Loop.watch_fd loop bad ~passive:false with
   | () -> Alcotest.fail "watch_fd accepted an fd beyond FD_SETSIZE"
   | exception Invalid_argument _ -> ());
  Tutil.check_int "rejected fd is not watched" 0
    (Hostio.Loop.watched_fds loop);
  (* A low-numbered descriptor passes the guard and unwatches cleanly. *)
  let r, w = Unix.pipe () in
  Hostio.Loop.watch_fd loop r ~passive:false;
  Tutil.check_int "low fd accepted" 1 (Hostio.Loop.watched_fds loop);
  Hostio.Loop.unwatch_fd loop r;
  Tutil.check_int "unwatched" 0 (Hostio.Loop.watched_fds loop);
  Unix.close r;
  Unix.close w;
  Tutil.check_int "ceiling is select's FD_SETSIZE" 1024 Hostio.Loop.fd_limit

let () =
  Alcotest.run "edge"
    [ Tutil.qsuite "readiness" [ prop_readiness ];
      Tutil.qsuite "timewheel" [ prop_wheel_order ];
      ("budget",
       [ Alcotest.test_case "idle bytes pinned" `Quick test_idle_budget ]);
      ("hostio",
       [ Alcotest.test_case "fd ceiling guard" `Quick test_fd_guard ]) ]
