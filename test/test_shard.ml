(* Conservative parallel engine (Engine.Shard): determinism across domain
   counts, and the lookahead-safety invariant the protocol rests on.

   The load-bearing property throughout: outcomes are a function of the
   shard *partition*, never of the *worker count*. Every test here builds
   the same sharded scenario several times, runs it under 1 / 2 / 4 / 8
   domains, and compares complete digests — virtual end time, payload
   checksums, per-segment frame counters, per-shard execution counts. *)

module Sim = Engine.Sim
module Shard = Engine.Shard
module Rng = Engine.Rng
module Bb = Engine.Bytebuf
module Group = Collectives.Group
module Gridgen = Scenario.Gridgen
module Segment = Simnet.Segment

let domain_counts = [ 1; 2; 4; 8 ]

(* ---------- direct Shard runtime: cross-shard ping-pong ---------- *)

(* Two shards, one frame bouncing [hops] times; every execution logs
   (shard, virtual time). The digest must not depend on the domain count,
   and each hop must land exactly [latency] after the previous. *)
let pingpong ~domains ~hops ~latency =
  let sims = [| Sim.create ~seed:1 (); Sim.create ~seed:2 () |] in
  let lookahead = [| [| max_int; latency |]; [| latency; max_int |] |] in
  let t = Shard.create ~lookahead sims in
  let log = Array.init 2 (fun _ -> ref []) in
  let rec hop sh i () =
    let now = Sim.now (Shard.sim t sh) in
    log.(sh) := now :: !(log.(sh));
    if i < hops then
      Shard.post t ~src:sh ~dst:(1 - sh) ~ts:(now + latency)
        (hop (1 - sh) (i + 1))
  in
  Sim.at sims.(0) 0 (hop 0 1);
  Shard.run ~domains t;
  (Array.map (fun l -> List.rev !l) log, Shard.executed t 0 + Shard.executed t 1)

let test_pingpong () =
  let reference = ref None in
  List.iter
    (fun domains ->
       let log, executed = pingpong ~domains ~hops:64 ~latency:7 in
       Tutil.check_int
         (Printf.sprintf "all hops executed (domains=%d)" domains)
         64 executed;
       (* Shard 0 runs hops 2,4,... at 7,21,...; timestamps must be the
          arithmetic sequence the lookahead dictates. *)
       List.iteri
         (fun k ts ->
            Tutil.check_int "hop timestamps follow latency" ((2 * k + 1) * 7)
              ts)
         log.(1);
       match !reference with
       | None -> reference := Some log
       | Some r ->
         Alcotest.(check (array (list int)))
           (Printf.sprintf "byte-identical log (domains=%d)" domains)
           r log)
    domain_counts

(* ---------- QCheck: lookahead-safety model ---------- *)

(* A random event tree over a random shard count: each node executes on
   its shard at a pre-computed timestamp and posts its children
   cross-shard at [ts + lookahead + extra]. Safety means no shard ever
   has to run an event before an in-flight frame with a smaller
   timestamp — operationally: every execution happens exactly at its
   planned timestamp (the runtime's [advance_to] raises if a frame
   arrives in a shard's past, and per-shard time never goes backward). *)
type ev = { e_sh : int; e_ts : int; e_kids : ev list }

let rec gen_ev rng ~nshards ~look ~sh ~ts ~hops =
  let kids =
    if hops = 0 then []
    else
      List.init (Rng.int rng 3) (fun _ ->
          let dst = Rng.int rng nshards in
          let extra = Rng.int rng 25 in
          gen_ev rng ~nshards ~look ~sh:dst ~ts:(ts + look + extra)
            ~hops:(hops - 1))
  in
  { e_sh = sh; e_ts = ts; e_kids = kids }

let run_model ~seed ~nshards ~look ~domains =
  let rng = Rng.create seed in
  let roots =
    List.init (2 + Rng.int rng 4) (fun _ ->
        gen_ev rng ~nshards ~look ~sh:(Rng.int rng nshards)
          ~ts:(Rng.int rng 50) ~hops:3)
  in
  let sims = Array.init nshards (fun i -> Sim.create ~seed:(100 + i) ()) in
  let lookahead = Array.make_matrix nshards nshards look in
  let t = Shard.create ~lookahead sims in
  (* Per-shard logs are appended only by that shard's own executions —
     owner-shard discipline, no locking needed. *)
  let logs = Array.init nshards (fun _ -> ref []) in
  let rec fire ev () =
    let now = Sim.now (Shard.sim t ev.e_sh) in
    logs.(ev.e_sh) := (ev.e_ts, now) :: !(logs.(ev.e_sh));
    List.iter
      (fun k -> Shard.post t ~src:ev.e_sh ~dst:k.e_sh ~ts:k.e_ts (fire k))
      ev.e_kids
  in
  List.iter (fun r -> Sim.at sims.(r.e_sh) r.e_ts (fire r)) roots;
  Shard.run ~domains t;
  Array.map (fun l -> List.rev !l) logs

let prop_lookahead_safety =
  QCheck.Test.make ~count:60 ~name:"shard model: planned = executed, no rewind"
    QCheck.(triple (int_bound 10_000) (int_range 2 4) (int_range 1 20))
    (fun (seed, nshards, look) ->
       let one = run_model ~seed ~nshards ~look ~domains:1 in
       let many = run_model ~seed ~nshards ~look ~domains:nshards in
       Array.iter
         (fun log ->
            ignore
              (List.fold_left
                 (fun prev (planned, actual) ->
                    if planned <> actual then
                      QCheck.Test.fail_reportf
                        "event planned for %d ran at %d" planned actual;
                    if actual < prev then
                      QCheck.Test.fail_reportf
                        "shard time went backward: %d after %d" actual prev;
                    actual)
                 min_int log))
         one;
       if one <> many then
         QCheck.Test.fail_reportf
           "logs differ between 1 and %d domains (seed %d)" nshards seed;
       true)

(* ---------- sharded grid: collectives determinism matrix ---------- *)

let pattern n seed =
  let b = Bb.create n in
  Bb.fill_pattern b ~seed;
  b

(* A scaled-down E13/E16 scenario: 4 SAN islands (one shard each) on a
   shared WAN, every rank running allreduce + barrier + bcast through the
   multilevel strategy, so SAN, loopback and cross-shard WAN paths all
   carry traffic. Returns a digest of everything observable. *)
let collective_digest ~seed ~domains =
  Padico.reset ();
  let g =
    Gridgen.generate ~seed ~sharded:true ~clusters:4 ~nodes_per_cluster:4 ()
  in
  let nodes = Array.of_list g.Gridgen.nodes in
  let groups = Group.create g.Gridgen.grid ~name:"shard-det" g.Gridgen.nodes in
  let sum = Atomic.make 0 in
  let hs =
    Array.mapi
      (fun r node ->
         Padico.spawn g.Gridgen.grid node
           ~name:(Printf.sprintf "det-%d" r)
           (fun () ->
              let a =
                Group.allreduce groups.(r) ~op:Group.Bxor
                  (pattern 512 (r + 1))
              in
              ignore (Atomic.fetch_and_add sum (Bb.checksum a));
              Group.barrier groups.(r);
              let b =
                Group.bcast groups.(r) ~root:0
                  (if r = 0 then pattern 256 7 else Bb.create 0)
              in
              ignore (Atomic.fetch_and_add sum (Bb.checksum b))))
      nodes
  in
  Padico.run g.Gridgen.grid ~until:(Engine.Time.sec 3600) ~domains;
  Array.iter Tutil.assert_done hs;
  let runtime = Option.get (Simnet.Net.shard_runtime (Padico.net g.Gridgen.grid)) in
  let per_shard =
    List.init (Shard.shard_count runtime) (fun i ->
        (Shard.executed runtime i, Shard.posted runtime i,
         Sim.now (Shard.sim runtime i)))
  in
  let segs =
    List.map
      (fun s ->
         ( Segment.name s, Segment.frames_sent s, Segment.frames_delivered s,
           Segment.frames_lost s, Segment.bytes_sent s ))
      (Simnet.Net.segments (Padico.net g.Gridgen.grid))
  in
  ( Padico.now g.Gridgen.grid, Atomic.get sum,
    Group.wan_messages groups.(0), Group.wan_bytes groups.(0),
    per_shard, segs )

let test_collective_determinism () =
  List.iter
    (fun seed ->
       let reference = collective_digest ~seed ~domains:1 in
       let now1, sum1, _, _, _, _ = reference in
       Tutil.check_bool "time advanced" true (now1 > 0);
       Tutil.check_bool "payload delivered" true (sum1 <> 0);
       List.iter
         (fun domains ->
            let d = collective_digest ~seed ~domains in
            if d <> reference then
              Alcotest.failf
                "collective digest differs: seed %d, %d domains vs 1" seed
                domains)
         (List.tl domain_counts))
    [ 42; 7; 1234 ]

(* ---------- sharded grid: edge-gateway determinism ---------- *)

(* The E15 topology under per-node shards: TCP handshakes, request bytes
   and acks all cross shards. Same digest law. *)
let edge_digest ~domains =
  Padico.reset ();
  let e =
    Gridgen.edge ~seed:11 ~sharded:true ~shards:3 ~client_nodes:5
      ~clients:40 ~churn:0.25 ~tail:1.3 ()
  in
  let st = Gridgen.run_edge ~until:(Engine.Time.sec 60) ~domains e in
  ( st.Gridgen.es_established, st.Gridgen.es_requests,
    st.Gridgen.es_reconnects, st.Gridgen.es_aborted, st.Gridgen.es_resets,
    st.Gridgen.es_served,
    Segment.frames_sent e.Gridgen.e_wan,
    Segment.frames_delivered e.Gridgen.e_wan,
    Segment.bytes_sent e.Gridgen.e_wan,
    Padico.now e.Gridgen.e_grid )

let test_edge_determinism () =
  let reference = edge_digest ~domains:1 in
  let est, req, _, _, _, served, _, _, _, _ = reference in
  Tutil.check_bool "connections established" true (est > 0);
  Tutil.check_bool "requests acked" true (req > 0);
  Tutil.check_int "every request served" req served;
  List.iter
    (fun domains ->
       let d = edge_digest ~domains in
       if d <> reference then
         Alcotest.failf "edge digest differs: %d domains vs 1" domains)
    (List.tl domain_counts)

(* ---------- guard rails ---------- *)

let test_validation () =
  (* Cross-shard segments must have positive latency. *)
  let net = Simnet.Net.create ~shards:2 () in
  let a = Simnet.Net.add_node ~shard:0 net "a" in
  let b = Simnet.Net.add_node ~shard:1 net "b" in
  let zero_lat =
    { Simnet.Presets.myrinet2000 with Simnet.Linkmodel.latency_ns = 0 }
  in
  ignore (Simnet.Net.add_segment net zero_lat [ a; b ]);
  (match Simnet.Net.run net with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "zero-latency cross-shard segment accepted");
  (* Classic grids reject shard placement and multi-domain runs. *)
  let net = Simnet.Net.create () in
  (match Simnet.Net.add_node ~shard:1 net "x" with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "classic grid accepted ~shard");
  ignore (Simnet.Net.add_node net "y");
  (match Simnet.Net.run ~domains:4 net with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "classic grid accepted ~domains");
  (* Host backend cannot shard. *)
  match Padico.create ~backend:Padico.Host ~shards:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Host backend accepted ~shards"

let () =
  Alcotest.run "shard"
    [ ("runtime",
       [ Alcotest.test_case "cross-shard ping-pong" `Quick test_pingpong;
         Alcotest.test_case "validation" `Quick test_validation ]);
      Tutil.qsuite "model" [ prop_lookahead_safety ];
      ("grid",
       [ Alcotest.test_case "collectives determinism matrix" `Quick
           test_collective_determinism;
         Alcotest.test_case "edge determinism matrix" `Quick
           test_edge_determinism ]) ]
