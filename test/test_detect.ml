module Bb = Engine.Bytebuf
module Sim = Engine.Sim
module Time = Engine.Time
module Clock = Engine.Clock
module Proc = Engine.Proc
module Node = Simnet.Node
module Group = Collectives.Group

let byte_buf len v =
  let b = Bb.create len in
  for i = 0 to len - 1 do
    Bb.set_u8 b i v
  done;
  b

let check_buf_all name expected b =
  for i = 0 to Bb.length b - 1 do
    Tutil.check_int (Printf.sprintf "%s[%d]" name i) expected (Bb.get_u8 b i)
  done

(* ---------- detector unit behaviour ---------- *)

let test_accrual () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let det = Detect.create ~name:"t" a in
  Detect.set_peers det [ 1; 2 ];
  let confirms = ref [] in
  let suspects = ref [] in
  let hbs = ref 0 in
  Detect.start det
    ~send_hb:(fun _ -> incr hbs)
    ~on_suspect:(fun p -> suspects := p :: !suspects)
    ~on_confirm:(fun p -> confirms := p :: !confirms)
    ();
  (* keep peer 2 chatty so only the silent peer 1 accrues suspicion *)
  let clock = Node.clock a in
  let rec chat () =
    Detect.heard det ~peer:2;
    Clock.after clock (Time.us 800) chat
  in
  Clock.after clock (Time.us 800) chat;
  (* a never-heard peer carries the bootstrap grace of [window] intervals:
     confirmation needs ~37 ms of silence, not ~9 *)
  Simnet.Net.run net ~until:(Time.ms 80);
  Detect.stop det;
  Tutil.check_bool "peer 1 suspected" true (List.mem 1 !suspects);
  Tutil.check_bool "peer 1 confirmed" true (List.mem 1 !confirms);
  Tutil.check_bool "peer 2 never confirmed" false (List.mem 2 !confirms);
  Tutil.check_bool "peer 1 verdict" true (Detect.verdict det ~peer:1 = Confirmed);
  Tutil.check_bool "peer 2 verdict" true (Detect.verdict det ~peer:2 = Alive);
  Tutil.check_bool "confirmed once" true
    (List.length (List.filter (fun p -> p = 1) !confirms) = 1);
  Tutil.check_bool "heartbeats were requested" true (!hbs > 0);
  Tutil.check_int "stats agree" 1 (Detect.stats det).confirms

let test_refute () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let det = Detect.create ~name:"t" a in
  Detect.set_peers det [ 5 ];
  let refutes = ref 0 in
  Detect.start det
    ~send_hb:(fun _ -> ())
    ~on_refute:(fun _ -> incr refutes)
    ~on_confirm:(fun _ -> ())
    ();
  let clock = Node.clock a in
  (* traffic for 8 ms, a 4 ms gap (long enough to suspect, not to
     confirm), then traffic again *)
  for i = 1 to 10 do
    Clock.after clock (i * Time.us 800) (fun () -> Detect.heard det ~peer:5)
  done;
  Clock.after clock (Time.ms 12) (fun () -> Detect.heard det ~peer:5);
  Simnet.Net.run net ~until:(Time.ms 14);
  Tutil.check_bool "suspicion was refuted" true (!refutes >= 1);
  Tutil.check_bool "peer alive again" true (Detect.verdict det ~peer:5 = Alive);
  Tutil.check_int "never confirmed" 0 (Detect.stats det).confirms;
  Detect.stop det;
  Tutil.check_bool "stopped" false (Detect.running det)

let test_link_dead () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let det = Detect.create ~name:"t" a in
  Detect.set_peers det [ 3 ];
  let confirms = ref [] in
  Detect.start det
    ~send_hb:(fun _ -> ())
    ~on_confirm:(fun p -> confirms := p :: !confirms)
    ();
  Detect.link_dead det ~peer:3;
  Tutil.check_bool "immediate confirm" true (!confirms = [ 3 ]);
  Tutil.check_bool "phi saturates" true (Detect.phi det ~peer:3 = infinity);
  (* confirmation is sticky: traffic does not resurrect *)
  Detect.heard det ~peer:3;
  Tutil.check_bool "sticky" true (Detect.verdict det ~peer:3 = Confirmed);
  Detect.stop det

(* ---------- healing groups: no crash, overhead path only ---------- *)

let test_heal_noop strategy () =
  let grid, a1, a2, b1, b2 = Tutil.two_clusters ~wan:Simnet.Presets.vthd () in
  let nodes = [ a1; a2; b1; b2 ] in
  let members =
    Group.create ~strategy ~deadline_ns:(Time.ms 400)
      ~heal:Detect.default_config grid ~name:"healnoop" nodes
  in
  let sim = Padico.sim grid in
  let handles =
    List.mapi
      (fun r node ->
         Padico.spawn grid node ~name:(Printf.sprintf "rank%d" r) (fun () ->
             let g = members.(r) in
             Group.barrier g;
             let b = Group.bcast g ~root:1 (byte_buf 16 9) in
             check_buf_all "bcast" 9 b;
             (match Group.reduce g ~root:2 ~op:Group.Sum (byte_buf 4 (10 + r)) with
              | Some res when r = 2 -> check_buf_all "reduce" 46 res
              | Some _ -> Alcotest.fail "non-root got a reduce result"
              | None -> Tutil.check_bool "root result" true (r <> 2));
             let ar = Group.allreduce g ~op:Group.Sum (byte_buf 4 (10 + r)) in
             check_buf_all "allreduce" 46 ar;
             (match Group.gather g ~root:0 (byte_buf 4 (20 + r)) with
              | Some arr ->
                Tutil.check_bool "gather at root" true (r = 0);
                Array.iteri
                  (fun i p -> check_buf_all "gather entry" (20 + i) p)
                  arr
              | None -> Tutil.check_bool "gather elsewhere" true (r <> 0));
             let ps = Array.init 4 (fun i -> byte_buf 4 (50 + i)) in
             let mine = Group.scatter g ~root:3 ps in
             check_buf_all "scatter" (50 + r) mine;
             Tutil.check_int "no evictions" 0 (Group.evictions g);
             Tutil.check_int "no restarts" 0 (Group.restarts g);
             Tutil.check_int "epoch 0" 0 (Group.epoch g)))
      nodes
  in
  ignore sim;
  Tutil.run_grid grid ~until:(Time.ms 300);
  Array.iter Group.retire members;
  List.iter Tutil.assert_done handles

(* ---------- healing groups: crash, eviction, retry ---------- *)

(* Build a healing 4-rank group over two 2-node SAN clusters joined by a
   4 ms WAN. Every rank runs a warm-up barrier; [victim] is crashed at
   20 ms (idle); survivors start [body] at 21 ms — before the phi-accrual
   confirmation (~25 ms) can land, so the operation stalls on the dead
   member and must be evicted and retried mid-flight. *)
let heal_scenario ?seed ?(strategy = Group.Multilevel) ~victim body =
  let grid, a1, a2, b1, b2 =
    Tutil.two_clusters ?seed ~wan:Simnet.Presets.vthd ()
  in
  let nodes = [ a1; a2; b1; b2 ] in
  let members =
    Group.create ~strategy ~deadline_ns:(Time.ms 400)
      ~heal:Detect.default_config grid ~name:"heal" nodes
  in
  let sim = Padico.sim grid in
  Sim.after sim (Time.ms 20) (fun () ->
      Node.set_up (List.nth nodes victim) false);
  let handles =
    List.mapi
      (fun r node ->
         Padico.spawn grid node ~name:(Printf.sprintf "rank%d" r) (fun () ->
             let g = members.(r) in
             Group.barrier g;
             if r <> victim then begin
               let dt = Time.ms 21 - Sim.now sim in
               if dt > 0 then Proc.sleep sim dt;
               body r g
             end))
      nodes
  in
  Tutil.run_grid grid ~until:(Time.ms 390);
  Array.iter Group.retire members;
  List.iteri (fun r h -> if r <> victim then Tutil.assert_done h) handles;
  members

let live_sum victim =
  let s = ref 0 in
  for i = 0 to 3 do
    if i <> victim then s := !s + (10 + i)
  done;
  !s land 0xff

let test_evict_nonproxy () =
  let victim = 3 in
  let members =
    heal_scenario ~victim (fun r g ->
        let res = Group.allreduce g ~op:Group.Sum (byte_buf 8 (10 + r)) in
        check_buf_all "allreduce minus dead" (live_sum victim) res;
        (* the group stays usable after the eviction *)
        let b = Group.bcast g ~root:1 (byte_buf 8 3) in
        check_buf_all "post-eviction bcast" 3 b)
  in
  Tutil.check_int "epoch" 1 (Group.epoch members.(0));
  Tutil.check_bool "dead ranks" true (Group.dead_ranks members.(0) = [ 3 ]);
  Tutil.check_int "live count" 3 (Group.live_count members.(0));
  Tutil.check_bool "the stalled op was retried" true
    (Group.restarts members.(0) >= 1);
  Tutil.check_bool "survivors not poisoned" true
    (Group.poisoned members.(0) = None && Group.poisoned members.(1) = None
     && Group.poisoned members.(2) = None)

let test_evict_proxy () =
  (* rank 2 is cluster 1's Netdb leader: its death must re-elect rank 3 as
     the cluster proxy and still complete the collective *)
  let victim = 2 in
  let members =
    heal_scenario ~victim (fun r g ->
        let res = Group.allreduce g ~op:Group.Sum (byte_buf 8 (10 + r)) in
        check_buf_all "allreduce minus proxy" (live_sum victim) res)
  in
  Tutil.check_int "epoch" 1 (Group.epoch members.(0));
  let db = Group.netdb members.(0) in
  let c3 = Selector.Netdb.cluster_of db 3 in
  Tutil.check_int "rank 3 promoted to proxy" 3 (Selector.Netdb.leader db c3)

let test_evict_root () =
  (* rank 0 roots the allreduce AND leads cluster 0: rootless ops re-root
     to the lowest live rank; rooted ops on the dead root fail cleanly
     without poisoning the group *)
  let victim = 0 in
  let members =
    heal_scenario ~victim (fun r g ->
        let res = Group.allreduce g ~op:Group.Sum (byte_buf 8 (10 + r)) in
        check_buf_all "allreduce re-rooted" (live_sum victim) res;
        (match Group.bcast g ~root:0 (byte_buf 4 1) with
         | _ -> Alcotest.fail "bcast from a dead root must fail"
         | exception Group.Failed e ->
           Tutil.check_bool "names the eviction" true
             (try
                ignore (Str.search_forward (Str.regexp "evicted") e 0);
                true
              with Not_found -> false));
        Group.barrier g)
  in
  Tutil.check_bool "group not poisoned by the dead-root bcast" true
    (Group.poisoned members.(1) = None)

(* ---------- the crash matrix: six ops x two strategies ---------- *)

type mop = MBarrier | MBcast | MReduce | MAllreduce | MGather | MScatter

let mops = [ MBarrier; MBcast; MReduce; MAllreduce; MGather; MScatter ]

let mop_name = function
  | MBarrier -> "barrier"
  | MBcast -> "bcast"
  | MReduce -> "reduce"
  | MAllreduce -> "allreduce"
  | MGather -> "gather"
  | MScatter -> "scatter"

let run_matrix_case ?seed ~strategy ~victim op =
  let label =
    Printf.sprintf "%s/%s/victim%d" (mop_name op)
      (match strategy with Group.Flat -> "flat" | Group.Multilevel -> "ml")
      victim
  in
  let members =
    heal_scenario ?seed ~strategy ~victim (fun r g ->
        match op with
        | MBarrier -> Group.barrier g
        | MBcast ->
          let b = Group.bcast g ~root:0 (byte_buf 8 77) in
          check_buf_all (label ^ " payload") 77 b
        | MReduce -> (
          match Group.reduce g ~root:0 ~op:Group.Sum (byte_buf 8 (10 + r)) with
          | Some res when r = 0 ->
            check_buf_all (label ^ " result") (live_sum victim) res
          | Some _ -> Alcotest.fail (label ^ ": non-root got a result")
          | None -> Tutil.check_bool (label ^ " no result") true (r <> 0))
        | MAllreduce ->
          let res = Group.allreduce g ~op:Group.Sum (byte_buf 8 (10 + r)) in
          check_buf_all (label ^ " result") (live_sum victim) res
        | MGather -> (
          match Group.gather g ~root:0 (byte_buf 4 (20 + r)) with
          | Some arr ->
            Tutil.check_bool (label ^ " at root") true (r = 0);
            Array.iteri
              (fun i p ->
                 if i = victim then
                   Tutil.check_int (label ^ " dead entry empty") 0
                     (Bb.length p)
                 else check_buf_all (label ^ " entry") (20 + i) p)
              arr
          | None -> Tutil.check_bool (label ^ " elsewhere") true (r <> 0))
        | MScatter ->
          let ps = Array.init 4 (fun i -> byte_buf 4 (50 + i)) in
          let mine = Group.scatter g ~root:0 ps in
          check_buf_all (label ^ " entry") (50 + r) mine)
  in
  (* rank 0 always survives: victims range over 1..3 *)
  Tutil.check_int (label ^ " epoch") 1 (Group.epoch members.(0));
  Tutil.check_bool (label ^ " dead") true
    (Group.dead_ranks members.(0) = [ victim ])

let test_matrix strategy () =
  List.iter
    (fun op ->
       (* victim 1: root's SAN neighbour; 2: the remote cluster's proxy;
          3: a remote non-proxy leaf *)
       List.iter (fun victim -> run_matrix_case ~strategy ~victim op) [ 1; 2; 3 ])
    mops

(* Randomized replay of the same matrix under fresh jitter/loss draws: any
   failing (seed, op, victim, strategy) quadruple is printed by QCheck and
   reproduces deterministically. *)
let qcheck_matrix =
  QCheck.Test.make ~name:"healing matrix under random seeds" ~count:12
    QCheck.(
      quad (int_bound 1_000_000) (int_range 1 3) (int_bound 5) bool)
    (fun (seed, victim, opi, flat) ->
       (* shrinking can step outside int_range: clamp, never crash rank 0 *)
       let victim = 1 + ((abs (victim - 1)) mod 3) in
       let strategy = if flat then Group.Flat else Group.Multilevel in
       run_matrix_case ~seed ~strategy ~victim (List.nth mops opi);
       true)

let () =
  Alcotest.run "detect"
    [
      ( "detector",
        [
          Alcotest.test_case "accrual: suspect then confirm" `Quick
            test_accrual;
          Alcotest.test_case "traffic refutes suspicion" `Quick test_refute;
          Alcotest.test_case "transport death confirms immediately" `Quick
            test_link_dead;
        ] );
      ( "healing",
        [
          Alcotest.test_case "no crash: all ops, multilevel" `Quick
            (test_heal_noop Group.Multilevel);
          Alcotest.test_case "no crash: all ops, flat" `Quick
            (test_heal_noop Group.Flat);
          Alcotest.test_case "crash non-proxy: evict + retry" `Quick
            test_evict_nonproxy;
          Alcotest.test_case "crash proxy: re-election" `Quick
            test_evict_proxy;
          Alcotest.test_case "crash root: re-root / clean error" `Quick
            test_evict_root;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "six ops, multilevel" `Slow
            (test_matrix Group.Multilevel);
          Alcotest.test_case "six ops, flat" `Slow (test_matrix Group.Flat);
        ] );
      Tutil.qsuite "matrix-random" [ qcheck_matrix ];
    ]
