(* The Padico_obs subsystem: trace ring buffer, span API, metrics registry,
   Chrome exporter well-formedness, and trace determinism. *)

module Bb = Engine.Bytebuf
module Obs = Padico_obs
module Trace = Padico_obs.Trace
module Event = Padico_obs.Event
module Metrics = Padico_obs.Metrics
module Json = Padico_obs.Json
module Vio = Personalities.Vio

let fresh () =
  Trace.disable ();
  Trace.enable ();
  Metrics.reset ()

let ev_poll = Event.Poll { kind = "sysio" }

(* ---------- trace buffer ---------- *)

let test_disabled_is_off () =
  Trace.disable ();
  Tutil.check_bool "off" false (Trace.on ())

let test_span_nesting () =
  fresh ();
  let sim = Engine.Sim.create () in
  let node = Simnet.Node.create sim ~id:0 ~name:"n0" in
  let outer = ref Trace.null_span and inner = ref Trace.null_span in
  Engine.Sim.at sim 100 (fun () ->
      outer := Trace.begin_span node (Event.Vl_connect { driver = "x" }));
  Engine.Sim.at sim 200 (fun () -> inner := Trace.begin_span node ev_poll);
  Engine.Sim.at sim 300 (fun () -> Trace.end_span !inner);
  Engine.Sim.at sim 500 (fun () -> Trace.end_span !outer);
  Engine.Sim.run sim;
  match Trace.records () with
  | [ r_inner; r_outer ] ->
    (* Spans are recorded when they end: inner first. *)
    Tutil.check_int "inner ts" 200 r_inner.Trace.ts;
    Tutil.check_int "inner dur" 100 r_inner.Trace.dur;
    Tutil.check_int "outer ts" 100 r_outer.Trace.ts;
    Tutil.check_int "outer dur" 400 r_outer.Trace.dur;
    (* Proper nesting: the outer interval contains the inner one. *)
    Tutil.check_bool "contained" true
      (r_outer.Trace.ts <= r_inner.Trace.ts
       && r_inner.Trace.ts + r_inner.Trace.dur
          <= r_outer.Trace.ts + r_outer.Trace.dur)
  | l -> Alcotest.failf "expected 2 records, got %d" (List.length l)

let test_instant_and_complete () =
  fresh ();
  let sim = Engine.Sim.create () in
  let node = Simnet.Node.create sim ~id:0 ~name:"n0" in
  Engine.Sim.at sim 50 (fun () -> Trace.instant node ev_poll);
  Engine.Sim.at sim 80 (fun () ->
      Trace.complete node ~since:10
        (Event.Dispatch { kind = "madio"; queued_ns = 70 }));
  Engine.Sim.run sim;
  (match Trace.records () with
   | [ i; c ] ->
     Tutil.check_int "instant dur" (-1) i.Trace.dur;
     Tutil.check_int "instant ts" 50 i.Trace.ts;
     Tutil.check_int "complete ts" 10 c.Trace.ts;
     Tutil.check_int "complete dur" 70 c.Trace.dur
   | l -> Alcotest.failf "expected 2 records, got %d" (List.length l));
  (* A [since] in the future clamps to a zero-length span, never negative. *)
  Trace.complete node ~since:max_int ev_poll;
  let last = List.nth (Trace.records ()) 2 in
  Tutil.check_int "clamped dur" 0 last.Trace.dur

let test_ring_wraparound () =
  Trace.enable ~capacity:4 ();
  let sim = Engine.Sim.create () in
  let node = Simnet.Node.create sim ~id:0 ~name:"n0" in
  for i = 1 to 10 do
    Engine.Sim.at sim i (fun () -> Trace.instant node ev_poll)
  done;
  Engine.Sim.run sim;
  Tutil.check_int "length" 4 (Trace.length ());
  Tutil.check_int "dropped" 6 (Trace.dropped ());
  let rs = Trace.records () in
  Tutil.check_int "records" 4 (List.length rs);
  (* Only the newest records survive, still in chronological order. *)
  Tutil.check_int "oldest surviving ts" 7 (List.hd rs).Trace.ts;
  List.iteri
    (fun i r -> Tutil.check_int "ts in order" (7 + i) r.Trace.ts)
    rs;
  (* Re-enabling resets both occupancy and drop accounting. *)
  Trace.enable ~capacity:4 ();
  Tutil.check_int "cleared" 0 (Trace.length ());
  Tutil.check_int "dropped cleared" 0 (Trace.dropped ())

(* ---------- metrics registry ---------- *)

let test_metrics_registry () =
  Metrics.reset ();
  let c1 = Metrics.counter (Metrics.Node "a") "x" in
  Engine.Stats.Counter.add c1 5;
  (* Get-or-create: the same instrument comes back. *)
  let c2 = Metrics.counter (Metrics.Node "a") "x" in
  Engine.Stats.Counter.incr c2;
  Tutil.check_int "shared counter" 6 (Engine.Stats.Counter.value c1);
  (* fresh_* rebinds the name to a zeroed instrument. *)
  let c3 = Metrics.fresh_counter (Metrics.Node "a") "x" in
  Tutil.check_int "fresh starts at 0" 0 (Engine.Stats.Counter.value c3);
  (match Metrics.find (Metrics.Node "a") "x" with
   | Some (Metrics.Counter c) ->
     Tutil.check_bool "registry holds the fresh one" true (c == c3)
   | _ -> Alcotest.fail "counter not found");
  (* Kind mismatch is a programming error, not a silent shadow. *)
  (try
     ignore (Metrics.summary (Metrics.Node "a") "x");
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  ignore (Metrics.summary Metrics.Global "s");
  ignore (Metrics.histogram (Metrics.Link "a->b") "h");
  (* Enumeration is sorted: Global, then nodes, then links. *)
  let order =
    List.map (fun (s, n, _) -> Metrics.scope_name s ^ "/" ^ n) (Metrics.all ())
  in
  Alcotest.(check (list string)) "sorted enumeration"
    [ "global/s"; "node:a/x"; "link:a->b/h" ]
    order;
  Metrics.reset ();
  Tutil.check_int "reset empties" 0 (List.length (Metrics.all ()))

(* ---------- a real scenario: ping over a grid ---------- *)

let run_ping () =
  let grid, a, b, _seg = Tutil.grid_pair Simnet.Presets.myrinet2000 in
  Padico.listen grid b ~port:4000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"echo" (fun () ->
             let buf = Bb.create 4 in
             if Vio.read_exact vl buf then ignore (Vio.write vl buf))));
  let h =
    Padico.spawn grid a ~name:"ping" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:b ~port:4000 in
        (match Vio.connect_wait vl with
         | Ok () -> ()
         | Error e -> failwith e);
        let buf = Bb.create 4 in
        ignore (Vio.write vl buf);
        ignore (Vio.read_exact vl buf))
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

let test_export_json_well_formed () =
  fresh ();
  run_ping ();
  Trace.disable ();
  let s = Obs.Export_chrome.to_string () in
  match Json.parse s with
  | Error msg -> Alcotest.failf "exported JSON does not parse: %s" msg
  | Ok doc ->
    let events =
      match Json.member "traceEvents" doc with
      | Some (Json.List l) -> l
      | _ -> Alcotest.fail "no traceEvents array"
    in
    Tutil.check_bool "has events" true (List.length events > 0);
    let cats =
      List.filter_map (fun e ->
          match Json.member "cat" e with
          | Some (Json.Str c) -> Some c
          | _ -> None)
        events
    in
    (* The ping exercises the whole stack: all three layers show up. *)
    List.iter
      (fun layer ->
         Tutil.check_bool ("layer " ^ layer) true (List.mem layer cats))
      [ "arbitration"; "abstraction"; "selection" ];
    (* Every non-metadata event is well-formed: name, ts, pid, and a phase
       among X (with dur) and i (with scope). *)
    List.iter
      (fun e ->
         (match Json.member "ph" e with
          | Some (Json.Str "M") -> ()
          | Some (Json.Str "X") ->
            Tutil.check_bool "X has dur" true (Json.member "dur" e <> None)
          | Some (Json.Str "i") ->
            Tutil.check_bool "i has scope" true
              (Json.member "s" e = Some (Json.Str "t"))
          | _ -> Alcotest.fail "event without known ph");
         match (Json.member "name" e, Json.member "pid" e) with
         | Some (Json.Str _), Some (Json.Int _) -> ()
         | _ -> Alcotest.fail "event missing name/pid")
      events;
    (* Both nodes got a process_name metadata record. *)
    let metas =
      List.filter (fun e -> Json.member "ph" e = Some (Json.Str "M")) events
    in
    Tutil.check_int "two processes" 2 (List.length metas)

let test_metrics_after_scenario () =
  fresh ();
  run_ping ();
  Trace.disable ();
  let find scope name =
    match Metrics.find scope name with
    | Some (Metrics.Counter c) -> Engine.Stats.Counter.value c
    | _ -> Alcotest.failf "missing counter %s" name
  in
  (* Arbitration-layer counters made it into the registry, and the selector
     recorded its decision. *)
  Tutil.check_bool "a sent madio msgs" true
    (find (Metrics.Node "a") "madio.sent" > 0);
  Tutil.check_bool "b dispatched madio work" true
    (find (Metrics.Node "b") "na.madio.dispatched" > 0);
  Tutil.check_int "selector chose madio once" 1
    (find Metrics.Global "selector.choice.madio")

let test_determinism () =
  let export () =
    fresh ();
    run_ping ();
    Trace.disable ();
    let s = Obs.Export_chrome.to_string () in
    Metrics.reset ();
    s
  in
  let first = export () in
  let second = export () in
  Tutil.check_bool "two identical runs produce identical traces" true
    (String.equal first second);
  (* Not vacuous: the trace really contains records. *)
  Tutil.check_bool "trace non-trivial" true (String.length first > 1000)

(* ---------- json corner cases ---------- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\n\t\x01");
        ("l", Json.List [ Json.Int (-3); Json.Float 1.5; Json.Bool true ]);
        ("n", Json.Null); ("e", Json.Obj []) ]
  in
  (match Json.parse (Json.to_string v) with
   | Ok v' -> Tutil.check_bool "roundtrip" true (v = v')
   | Error e -> Alcotest.failf "roundtrip parse failed: %s" e);
  (match Json.parse "{\"a\": [1, 2" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "truncated input must not parse");
  match Json.parse "[] trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage must not parse"

let () =
  Alcotest.run "obs"
    [ ("trace",
       [ Alcotest.test_case "disabled flag" `Quick test_disabled_is_off;
         Alcotest.test_case "span nesting" `Quick test_span_nesting;
         Alcotest.test_case "instant + complete" `Quick
           test_instant_and_complete;
         Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound ]);
      ("metrics",
       [ Alcotest.test_case "registry" `Quick test_metrics_registry;
         Alcotest.test_case "after scenario" `Quick
           test_metrics_after_scenario ]);
      ("export",
       [ Alcotest.test_case "chrome JSON parses back" `Quick
           test_export_json_well_formed;
         Alcotest.test_case "determinism" `Quick test_determinism;
         Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip ]) ]
