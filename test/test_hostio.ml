(* Hostio: the real-OS execution backend. Loop/timer semantics, stream
   round-trips over socketpair and real TCP, graceful close vs RST, and the
   conformance-kit subset on the host backend. Everything here runs in real
   time, so durations are kept small and deadlines generous. *)

module Loop = Hostio.Loop
module Stream = Hostio.Stream
module Bb = Engine.Bytebuf
module Clock = Engine.Clock
module Time = Engine.Time

let check_int = Tutil.check_int
let check_bool = Tutil.check_bool

(* ---------- timers ---------- *)

let test_timer_order () =
  let loop = Loop.create () in
  let fired = ref [] in
  ignore (Loop.arm loop ~after_ns:(Time.ms 5) (fun () -> fired := 5 :: !fired));
  ignore (Loop.arm loop ~after_ns:(Time.ms 1) (fun () -> fired := 1 :: !fired));
  ignore (Loop.arm loop ~after_ns:(Time.ms 3) (fun () -> fired := 3 :: !fired));
  Loop.run loop;
  Alcotest.(check (list int)) "firing order" [ 1; 3; 5 ] (List.rev !fired);
  check_int "all fired" 3 (Loop.timers_fired loop)

let test_timer_monotonicity () =
  let loop = Loop.create () in
  let clk = Loop.clock loop in
  check_bool "monotonic kind" true (Clock.kind clk = Clock.Monotonic);
  check_bool "loop recoverable" true
    (match Loop.of_clock clk with Some l -> l == loop | None -> false);
  let t_armed = Clock.now clk in
  let t_fired = ref (-1) in
  Clock.after clk (Time.ms 10) (fun () -> t_fired := Clock.now clk);
  Loop.run loop;
  let elapsed = !t_fired - t_armed in
  check_bool "fired" true (!t_fired >= 0);
  check_bool
    (Printf.sprintf "never early (elapsed %dns)" elapsed)
    true
    (elapsed >= Time.ms 10);
  check_bool
    (Printf.sprintf "within bounds (elapsed %dns)" elapsed)
    true
    (elapsed < Time.sec 5)

let test_timer_cancel () =
  let loop = Loop.create () in
  let fired = ref false in
  (* The long timer is cancelled: the loop must quiesce without waiting the
     full 60 s — the wall-clock test harness is the proof. *)
  let tm = Loop.arm loop ~after_ns:(Time.sec 60) (fun () -> fired := true) in
  ignore (Loop.arm loop ~after_ns:(Time.ms 1) (fun () -> Loop.cancel tm));
  Loop.cancel tm;
  Loop.cancel tm (* idempotent *);
  Loop.run loop;
  check_bool "cancelled timer never fires" false !fired;
  check_int "no live timers" 0 (Loop.live_timers loop)

let test_proc_on_host_clock () =
  let loop = Loop.create () in
  let clk = Loop.clock loop in
  let order = ref [] in
  let h =
    Engine.Proc.spawn_on clk ~name:"host-proc" (fun () ->
        order := `A :: !order;
        Engine.Proc.sleep_on clk (Time.ms 2);
        order := `B :: !order)
  in
  ignore
    (Loop.arm loop ~after_ns:(Time.ms 1) (fun () -> order := `T :: !order));
  Loop.run loop;
  Tutil.assert_done h;
  check_bool "sleep interleaves with timers" true
    (List.rev !order = [ `A; `T; `B ])

(* ---------- streams ---------- *)

let drain stream =
  let acc = Buffer.create 256 in
  let rec go () =
    match Stream.read stream ~max:4096 with
    | Some b ->
      Buffer.add_string acc (Bb.to_string b);
      go ()
    | None -> ()
  in
  go ();
  Buffer.contents acc

let test_pair_echo () =
  let loop = Loop.create () in
  let a, b = Stream.pair loop in
  let got = Buffer.create 64 in
  (* b echoes everything back; a collects the echo and closes. *)
  Stream.set_event_cb b (fun ev ->
      match ev with
      | Stream.Readable ->
        let s = drain b in
        ignore (Stream.write b (Bb.of_string s))
      | Stream.Peer_closed -> Stream.close b
      | _ -> ());
  let msg = "hostio says hello over a socketpair" in
  Stream.set_event_cb a (fun ev ->
      match ev with
      | Stream.Readable ->
        Buffer.add_string got (drain a);
        if Buffer.length got >= String.length msg then Stream.close a
      | _ -> ());
  ignore (Stream.write a (Bb.of_string msg));
  Loop.run loop;
  Alcotest.(check string) "echo round-trip" msg (Buffer.contents got);
  check_bool "a closed" false (Stream.is_open a);
  check_bool "b closed" false (Stream.is_open b)

let test_tcp_echo () =
  let loop = Loop.create () in
  let server_got = Buffer.create 64 in
  let listener =
    Stream.listen loop (fun conn ->
        Stream.set_event_cb conn (fun ev ->
            match ev with
            | Stream.Readable ->
              let s = drain conn in
              Buffer.add_string server_got s;
              ignore (Stream.write conn (Bb.of_string s))
            | Stream.Peer_closed -> Stream.close conn
            | _ -> ()))
  in
  let port = Stream.listener_port listener in
  check_bool "real ephemeral port" true (port > 0);
  let c = Stream.connect loop ~port () in
  let echo = Buffer.create 64 in
  let msg = String.concat "," (List.init 200 string_of_int) in
  Stream.set_event_cb c (fun ev ->
      match ev with
      | Stream.Established -> ignore (Stream.write c (Bb.of_string msg))
      | Stream.Readable ->
        Buffer.add_string echo (drain c);
        if Buffer.length echo >= String.length msg then Stream.close c
      | _ -> ());
  Loop.run loop;
  Stream.close_listener listener;
  Alcotest.(check string) "server saw the bytes" msg (Buffer.contents server_got);
  Alcotest.(check string) "client got the echo" msg (Buffer.contents echo)

let test_graceful_close () =
  let loop = Loop.create () in
  let a, b = Stream.pair loop in
  let events = ref [] in
  Stream.set_event_cb b (fun ev ->
      match ev with
      | Stream.Readable -> events := `Data (drain b) :: !events
      | Stream.Peer_closed ->
        events := `Fin :: !events;
        Stream.close b
      | Stream.Reset -> events := `Reset :: !events
      | _ -> ());
  ignore (Stream.write a (Bb.of_string "last words"));
  Stream.close a;
  Loop.run loop;
  (* Graceful: data first, then FIN — never a reset. *)
  check_bool "data then fin" true
    (List.rev !events = [ `Data "last words"; `Fin ]);
  check_bool "peer_closed observable" true (Stream.peer_closed b)

let test_abort_rst () =
  let loop = Loop.create () in
  let server_events = ref [] in
  let listener =
    Stream.listen loop (fun conn ->
        Stream.set_event_cb conn (fun ev ->
            match ev with
            | Stream.Readable -> ignore (drain conn)
            | Stream.Peer_closed ->
              server_events := `Fin :: !server_events;
              Stream.close conn
            | Stream.Reset -> server_events := `Reset :: !server_events
            | _ -> ()))
  in
  let c = Stream.connect loop ~port:(Stream.listener_port listener) () in
  Stream.set_event_cb c (fun ev ->
      match ev with
      | Stream.Established ->
        ignore (Stream.write c (Bb.of_string "doomed"));
        Stream.abort c
      | _ -> ());
  Loop.run loop;
  Stream.close_listener listener;
  check_bool "abort closed locally" false (Stream.is_open c);
  (* The peer must observe a hard termination (RST), not a graceful FIN.
     Depending on delivery timing the kernel may or may not hand the
     in-flight bytes over first; the termination kind is the contract. *)
  check_bool
    (Printf.sprintf "peer saw reset (events: %d)" (List.length !server_events))
    true
    (List.mem `Reset !server_events && not (List.mem `Fin !server_events))

(* ---------- host backend: end-to-end through Padico ---------- *)

(* A VLink request/response over the full stack — selector, SysIO,
   NetAccess arbitration — on real sockets. *)
let test_host_backend_roundtrip () =
  let grid = Padico.create ~backend:Padico.Host () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore (Padico.add_segment grid Simnet.Presets.ethernet100 [ a; b ]);
  let got = ref "" in
  Padico.listen grid b ~port:4000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"server" (fun () ->
             let buf = Bb.create 64 in
             match Vlink.Vl.await (Vlink.Vl.post_read vl buf) with
             | Vlink.Vl.Done n ->
               got := Bb.to_string (Bb.sub buf 0 n);
               ignore
                 (Vlink.Vl.await
                    (Vlink.Vl.post_write vl (Bb.of_string "pong")));
               Vlink.Vl.close vl
             | _ -> Vlink.Vl.close vl)));
  let reply = ref "" in
  let vl = Padico.connect grid ~src:a ~dst:b ~port:4000 in
  ignore
    (Padico.spawn grid a ~name:"client" (fun () ->
         (match Vlink.Vl.await_connected vl with
          | Ok () -> ()
          | Error m -> Alcotest.failf "connect failed: %s" m);
         ignore (Vlink.Vl.await (Vlink.Vl.post_write vl (Bb.of_string "ping")));
         let buf = Bb.create 64 in
         (match Vlink.Vl.await (Vlink.Vl.post_read vl buf) with
          | Vlink.Vl.Done n -> reply := Bb.to_string (Bb.sub buf 0 n)
          | _ -> ());
         Vlink.Vl.close vl));
  Padico.run grid ~until:(Time.sec 30);
  Tutil.check_string "server got" "ping" !got;
  Tutil.check_string "client reply" "pong" !reply

(* A fault-plan "link down" must kill the real sockets riding that
   segment: the host conns subscribe to segment link state and reset. *)
let test_host_link_down () =
  let grid = Padico.create ~backend:Padico.Host () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]);
  ignore
    (Padico_fault.Inject.apply (Padico.net grid)
       [ { Padico_fault.Plan.at_ns = Time.ms 50;
           action = Padico_fault.Plan.Link_down "lan" } ]);
  let server_failed = ref false and client_failed = ref false in
  Padico.listen grid b ~port:4100 (fun vl ->
      Vlink.Vl.on_event vl (function
        | Vlink.Vl.Failed _ -> server_failed := true
        | _ -> ()));
  let vl = Padico.connect grid ~src:a ~dst:b ~port:4100 in
  Vlink.Vl.on_event vl (function
    | Vlink.Vl.Failed _ -> client_failed := true
    | _ -> ());
  Padico.run grid ~until:(Time.sec 5);
  check_bool "client saw link death" true !client_failed;
  check_bool "server saw link death" true !server_failed

(* The conformance kit's host subset: the same obligations the simulated
   adapters satisfy, green over real Unix sockets. *)
let test_host_conformance_kit () =
  List.iter
    (fun c ->
       try c.Padico_check.Conform.run ~plan:None Engine.Sim.Fifo
       with Padico_check.Conform.Failed m ->
         Alcotest.failf "%s: %s" c.Padico_check.Conform.case_name m)
    (Padico_check.Conform.host_cases ())

let () =
  Alcotest.run "hostio"
    [ ( "loop",
        [ Alcotest.test_case "timer firing order" `Quick test_timer_order;
          Alcotest.test_case "timer monotonicity bounds" `Quick
            test_timer_monotonicity;
          Alcotest.test_case "timer cancel + quiesce" `Quick test_timer_cancel;
          Alcotest.test_case "green threads on the host clock" `Quick
            test_proc_on_host_clock ] );
      ( "stream",
        [ Alcotest.test_case "socketpair echo round-trip" `Quick
            test_pair_echo;
          Alcotest.test_case "real TCP echo round-trip" `Quick test_tcp_echo;
          Alcotest.test_case "graceful close delivers FIN" `Quick
            test_graceful_close;
          Alcotest.test_case "abort delivers RST" `Quick test_abort_rst ] );
      ( "backend",
        [ Alcotest.test_case "Padico round-trip on host" `Quick
            test_host_backend_roundtrip;
          Alcotest.test_case "link-down resets host sockets" `Quick
            test_host_link_down;
          Alcotest.test_case "conformance kit host subset" `Slow
            test_host_conformance_kit ] ) ]
