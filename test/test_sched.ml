(* PR 5 — adaptive arbitration & small-message aggregation.

   Covers: the Na_core adaptive policy (idle-scan accounting, backoff,
   wake-on-post), MadIO aggregation semantics (no loss, no reorder,
   boundary preservation, flush triggers), the Bytebuf slab pool, the
   Streamq O(1) front slot — and regression pins asserting that the
   default [static] policy keeps the E2/E9/E10/E11 code paths
   byte-identical in virtual time (any drift in the shared fast path
   shows up as an exact-equality failure here). *)

module Bb = Engine.Bytebuf
module Time = Engine.Time
module Vl = Vlink.Vl
module Madio = Netaccess.Madio
module Na = Netaccess.Na_core
module Sysio = Netaccess.Sysio
module Plan = Padico_fault.Plan
module Inject = Padico_fault.Inject

let check_int = Tutil.check_int

let check_bool = Tutil.check_bool

let check_string = Tutil.check_string

let madio_grid ?(seed = 7) () =
  let grid, a, b, seg = Tutil.grid_pair ~seed Simnet.Presets.myrinet2000 in
  (grid, a, b, Padico.madio grid a seg, Padico.madio grid b seg)

(* ---------- static-policy regression pins ----------

   Each scenario walks one experiment's code path (E2 vlink echo, E9 raw
   MadIO ping-pong, E10 failover, E11 credit window) under the default
   static policy and must finish at the exact pinned virtual time: the
   adaptive scheduler and the aggregation machinery are new code that
   must not perturb the default path by a single nanosecond. *)

(* E2 path: vlink echo round trip over Myrinet (selector picks madio). *)
let e2_scenario () =
  let grid, a, b, _seg = Tutil.grid_pair ~seed:7 Simnet.Presets.myrinet2000 in
  Padico.listen grid b ~port:5000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"echo" (fun () ->
             let buf = Bb.create 64 in
             match Vl.await (Vl.post_read vl buf) with
             | Vl.Done n ->
               ignore (Vl.await (Vl.post_write vl (Bb.sub buf 0 n)))
             | _ -> ())));
  let t_done = ref (-1) in
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:b ~port:5000 in
        (match Vl.await_connected vl with
         | Ok () -> ()
         | Error m -> Alcotest.failf "connect: %s" m);
        ignore (Vl.await (Vl.post_write vl (Tutil.pattern_buf ~seed:1 64)));
        match Vl.await (Vl.post_read vl (Bb.create 64)) with
        | Vl.Done 64 -> t_done := Padico.now grid
        | _ -> Alcotest.fail "echo incomplete")
  in
  Tutil.run_grid grid;
  Tutil.assert_done h;
  !t_done

(* E9 path: raw MadIO ping-pong, 50 round trips of 64 B. *)
let e9_scenario () =
  let grid, _a, b, ma, mb = madio_grid () in
  let la = Madio.open_lchannel ma ~id:9 in
  let lb = Madio.open_lchannel mb ~id:9 in
  let iters = 50 in
  let t_done = ref (-1) in
  let rounds = ref 0 in
  Madio.set_recv lb (fun ~src buf -> Madio.send lb ~dst:src buf);
  Madio.set_recv la (fun ~src:_ _ ->
      incr rounds;
      if !rounds = iters then t_done := Padico.now grid
      else
        Madio.send la ~dst:(Simnet.Node.id b) (Tutil.pattern_buf ~seed:!rounds 64));
  Madio.send la ~dst:(Simnet.Node.id b) (Tutil.pattern_buf ~seed:0 64);
  Tutil.run_grid grid;
  check_int "all rounds" iters !rounds;
  !t_done

(* E10 path: resilient transfer with a SAN link-down at 1 ms. *)
let e10_scenario () =
  let grid = Padico.create ~seed:42 () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore
    (Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san" [ a; b ]);
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]);
  Resilient.listen grid b ~port:9000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"echo" (fun () ->
             let buf = Bb.create 65_536 in
             let rec loop () =
               match Vl.await (Vl.post_read vl buf) with
               | Vl.Done n ->
                 (match Vl.await (Vl.post_write vl (Bb.sub buf 0 n)) with
                  | Vl.Done _ -> loop ()
                  | _ -> ())
               | _ -> ()
             in
             loop ())));
  let conn = Resilient.connect grid ~src:a ~dst:b ~port:9000 in
  let cvl = Resilient.vl conn in
  let total = 100_000 in
  let received = ref 0 in
  let t_done = ref (-1) in
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        (match Vl.await_connected cvl with
         | Ok () -> ()
         | Error m -> Alcotest.failf "connect: %s" m);
        let chunk = 65_536 in
        let sent = ref 0 in
        while !sent < total do
          let n = min chunk (total - !sent) in
          ignore (Vl.post_write cvl (Tutil.pattern_buf ~seed:!sent n));
          sent := !sent + n
        done;
        let buf = Bb.create 65_536 in
        let rec rd () =
          if !received < total then
            match Vl.await (Vl.post_read cvl buf) with
            | Vl.Done n ->
              received := !received + n;
              rd ()
            | Vl.Eof | Vl.Again -> ()
            | Vl.Error m -> Alcotest.failf "read: %s" m
          else t_done := Padico.now grid
        in
        rd ())
  in
  (match Plan.parse "at 1ms link-down san\n" with
   | Ok plan -> ignore (Inject.apply (Padico.net grid) plan)
   | Error e -> Alcotest.failf "plan: %s" e);
  Tutil.run_grid grid;
  Tutil.assert_done h;
  check_int "all bytes echoed" total !received;
  let st = Resilient.stats conn in
  check_string "failed over to sysio" "sysio" st.Resilient.driver;
  (!t_done, st.Resilient.switches, st.Resilient.downtime_ns)

(* E11 path: credit-windowed one-way MadIO flow (auto-grant). *)
let e11_scenario () =
  let grid, _a, b, ma, mb = madio_grid ~seed:11 () in
  Madio.set_credit_window ma 4096;
  Madio.set_credit_window mb 4096;
  let la = Madio.open_lchannel ma ~id:4 in
  let lb = Madio.open_lchannel mb ~id:4 in
  let n = 40 in
  let got = ref 0 in
  let t_done = ref (-1) in
  Madio.set_recv lb (fun ~src:_ _ ->
      incr got;
      if !got = n then t_done := Padico.now grid);
  ignore
    (Padico.spawn grid _a ~name:"src" (fun () ->
         for i = 1 to n do
           Madio.send la ~dst:(Simnet.Node.id b) (Tutil.pattern_buf ~seed:i 1024)
         done));
  Tutil.run_grid grid;
  check_int "all delivered" n !got;
  check_bool "one-way flow produced credit-only grants" true
    (Madio.credit_messages mb > 0);
  !t_done

(* Measured once with the pre-adaptive static dispatcher; exact equality
   required (see header comment). *)
let pin_e2_ns = 38_308

let pin_e9_ns = 749_400

let pin_e10 = (5_154_461, 1, 1_104_788)

let pin_e11_ns = 432_885

let test_static_pins () =
  let e2 = e2_scenario () in
  let e9 = e9_scenario () in
  let e10_t, e10_sw, e10_down = e10_scenario () in
  let e11 = e11_scenario () in
  check_int "E2 vlink echo virtual time" pin_e2_ns e2;
  check_int "E9 madio ping-pong virtual time" pin_e9_ns e9;
  let p_t, p_sw, p_down = pin_e10 in
  check_int "E10 failover completion time" p_t e10_t;
  check_int "E10 adapter switches" p_sw e10_sw;
  check_int "E10 downtime" p_down e10_down;
  check_int "E11 credit-window virtual time" pin_e11_ns e11

(* ---------- aggregation semantics ---------- *)

(* Mixed sizes straddling the threshold: everything must arrive exactly
   once, in order, with boundaries intact (no merge, no split). *)
let test_agg_no_loss_no_reorder () =
  let grid, _a, b, ma, mb = madio_grid ~seed:3 () in
  Madio.set_aggregation ma true;
  Madio.set_aggregation mb true;
  let la = Madio.open_lchannel ma ~id:2 in
  let lb = Madio.open_lchannel mb ~id:2 in
  let sizes = [| 8; 100; 255; 256; 300; 1000; 16; 64; 4000; 2 |] in
  let n = 200 in
  let sent = Array.init n (fun i ->
      let sz = max 4 sizes.(i mod Array.length sizes) in
      let m = Tutil.pattern_buf ~seed:i sz in
      Bb.set_u16 m 0 i;
      m)
  in
  let next = ref 0 in
  Madio.set_recv lb (fun ~src:_ buf ->
      let seq = Bb.get_u16 buf 0 in
      check_int "in-order sequence" !next seq;
      check_bool
        (Printf.sprintf "message %d boundary+content intact" seq)
        true
        (Bb.equal buf sent.(seq));
      incr next);
  ignore
    (Padico.spawn grid _a ~name:"src" (fun () ->
         Array.iter (fun m -> Madio.send la ~dst:(Simnet.Node.id b) m) sent));
  Tutil.run_grid grid;
  check_int "all messages delivered" n !next;
  check_bool "aggregation actually batched" true (Madio.messages_batched ma > 0);
  check_bool "packets were saved" true (Madio.packets_saved ma > 0);
  check_bool "over-threshold sizes forced large-flushes too" true
    (Madio.batches_sent ma > 0)

(* A lone sub-threshold message sits in the queue for exactly the latency
   budget, then the engine-timer flush delivers it. *)
let test_agg_flush_on_budget () =
  let budget = 50_000 in
  let delivery_time agg =
    let grid, _a, b, ma, mb = madio_grid ~seed:4 () in
    if agg then begin
      Madio.set_aggregation ma ~budget_ns:budget true;
      Madio.set_aggregation mb true
    end;
    let la = Madio.open_lchannel ma ~id:1 in
    let lb = Madio.open_lchannel mb ~id:1 in
    let t = ref (-1) in
    Madio.set_recv lb (fun ~src:_ _ -> t := Padico.now grid);
    ignore
      (Padico.spawn grid _a ~name:"src" (fun () ->
           Madio.send la ~dst:(Simnet.Node.id b) (Tutil.pattern_buf ~seed:1 48)));
    Tutil.run_grid grid;
    !t
  in
  let t_off = delivery_time false in
  let t_on = delivery_time true in
  check_bool "un-aggregated delivery is below the budget" true
    (t_off > 0 && t_off < budget);
  check_bool "budget flush waits out the budget" true (t_on >= budget);
  check_bool "budget flush happens promptly after expiry" true
    (t_on < budget + t_off + 10_000)

(* An explicit flush must not wait for the budget timer. *)
let test_agg_explicit_flush () =
  let grid, _a, b, ma, mb = madio_grid ~seed:5 () in
  Madio.set_aggregation ma ~budget_ns:(Time.ms 10) true;
  Madio.set_aggregation mb true;
  let la = Madio.open_lchannel ma ~id:1 in
  let lb = Madio.open_lchannel mb ~id:1 in
  let t = ref (-1) in
  Madio.set_recv lb (fun ~src:_ _ -> t := Padico.now grid);
  ignore
    (Padico.spawn grid _a ~name:"src" (fun () ->
         Madio.send la ~dst:(Simnet.Node.id b) (Tutil.pattern_buf ~seed:1 32);
         Madio.flush la ~dst:(Simnet.Node.id b)));
  Tutil.run_grid grid;
  check_bool "delivered well before the 10ms budget" true
    (!t > 0 && !t < Time.ms 1)

(* The headline perf claim: >= 2x small-message throughput at equal
   goodput for a 500-message 64 B burst. *)
let test_agg_throughput_2x () =
  let burst agg =
    let grid, _a, b, ma, mb = madio_grid ~seed:6 () in
    if agg then begin
      Madio.set_aggregation ma true;
      Madio.set_aggregation mb true
    end;
    let la = Madio.open_lchannel ma ~id:3 in
    let lb = Madio.open_lchannel mb ~id:3 in
    let n = 500 in
    let got = ref 0 and sum = ref 0 and t_done = ref (-1) in
    Madio.set_recv lb (fun ~src:_ buf ->
        incr got;
        sum := !sum + Bb.checksum buf;
        if !got = n then t_done := Padico.now grid);
    ignore
      (Padico.spawn grid _a ~name:"src" (fun () ->
           for i = 1 to n do
             Madio.send la ~dst:(Simnet.Node.id b) (Tutil.pattern_buf ~seed:i 64)
           done));
    Tutil.run_grid grid;
    check_int "all delivered" n !got;
    (!t_done, !sum)
  in
  let t_off, sum_off = burst false in
  let t_on, sum_on = burst true in
  check_int "equal goodput (checksums match)" sum_off sum_on;
  check_bool
    (Printf.sprintf "aggregation >= 2x faster (off %d ns, on %d ns)" t_off
       t_on)
    true
    (t_off >= 2 * t_on)

(* ---------- adaptive polling ---------- *)

(* A MadIO-only workload next to one watched-but-silent socket: the
   eager adaptive scheduler charges an idle SysIO scan every busy round;
   exponential backoff must cut those charged polls by >= 5x. The static
   policy never models idle scans at all. *)
let test_adaptive_poll_reduction () =
  let polls_idle policy =
    let grid = Padico.create ~seed:5 () in
    let a = Padico.add_node grid "a" in
    let b = Padico.add_node grid "b" in
    let san =
      Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san" [ a; b ]
    in
    let lan =
      Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]
    in
    Na.set_policy (Na.get a) policy;
    Na.set_policy (Na.get b) policy;
    (* One idle-but-watched TCP connection on the LAN. *)
    let sa = Sysio.get a and sb = Sysio.get b in
    let stack_a = Sysio.stack_on sa lan and stack_b = Sysio.stack_on sb lan in
    Sysio.listen sb stack_b ~port:80 (fun conn ->
        Sysio.watch sb conn (fun _ -> ()));
    ignore
      (Sysio.connect sa stack_a ~dst:(Simnet.Node.id b) ~port:80
         (fun _ _ -> ()));
    (* Busy MadIO ping-pong on the SAN. *)
    let ma = Padico.madio grid a san and mb = Padico.madio grid b san in
    let la = Madio.open_lchannel ma ~id:1 in
    let lb = Madio.open_lchannel mb ~id:1 in
    let iters = 300 in
    let rounds = ref 0 in
    Madio.set_recv lb (fun ~src buf -> Madio.send lb ~dst:src buf);
    Madio.set_recv la (fun ~src:_ _ ->
        incr rounds;
        if !rounds < iters then
          Madio.send la ~dst:(Simnet.Node.id b)
            (Tutil.pattern_buf ~seed:!rounds 64));
    Madio.send la ~dst:(Simnet.Node.id b) (Tutil.pattern_buf ~seed:0 64);
    Tutil.run_grid grid;
    check_int "ping-pong completed" iters !rounds;
    Na.polls_idle (Na.get a)
  in
  let static = polls_idle Na.default_policy in
  let eager =
    polls_idle (Na.Adaptive { Na.default_adaptive with Na.idle_backoff = false })
  in
  let backoff = polls_idle (Na.Adaptive Na.default_adaptive) in
  check_int "static models no idle scans" 0 static;
  check_bool "eager adaptive charges idle scans" true (eager > 0);
  check_bool
    (Printf.sprintf "backoff cuts charged idle polls >= 5x (%d -> %d)" eager
       backoff)
    true
    (eager >= 5 * max backoff 1)

(* ---------- Bytebuf slab pool ---------- *)

let test_bytebuf_pool () =
  Bb.Pool.reset ();
  let a = Bb.Pool.alloc 16 in
  check_int "first alloc is a miss" 1 (Bb.Pool.pool_misses ());
  Bb.Pool.release a;
  check_int "released slab pooled" 1 (Bb.Pool.pooled ());
  let b = Bb.Pool.alloc 32 in
  check_int "second alloc reuses the slab" 1 (Bb.Pool.pool_hits ());
  check_int "pool drained" 0 (Bb.Pool.pooled ());
  check_int "requested length honoured" 32 (Bb.length b);
  (* Oversize requests bypass the pool entirely. *)
  let big = Bb.Pool.alloc (Bb.Pool.slab + 1) in
  check_int "oversize alloc is a miss" 2 (Bb.Pool.pool_misses ());
  Bb.Pool.release big;
  check_int "oversize buffer not pooled" 0 (Bb.Pool.pooled ());
  (* Sub-slices must not re-enter the pool (offset no longer 0). *)
  let c = Bb.Pool.alloc 64 in
  Bb.Pool.release (Bb.sub c 8 8);
  check_int "sub-slice not pooled" 0 (Bb.Pool.pooled ())

(* ---------- Streamq O(1) front slot ---------- *)

let test_streamq_split_pops () =
  let q = Vlink.Streamq.create () in
  let src = Tutil.pattern_buf ~seed:1 10_000 in
  (* Push as uneven chunks. *)
  let off = ref 0 in
  let sizes = [ 1; 37; 1024; 3; 4096; 500; 4339 ] in
  List.iter
    (fun sz ->
       Vlink.Streamq.push q (Bb.sub src !off sz);
       off := !off + sz)
    sizes;
  check_int "pushed everything" 10_000 (Vlink.Streamq.length q);
  (* Pop with maxima that force head splits, reassemble, compare. *)
  let out = Bb.create 10_000 in
  let filled = ref 0 in
  let maxes = [| 7; 1000; 13; 64; 2048; 1; 511 |] in
  let i = ref 0 in
  while Vlink.Streamq.length q > 0 do
    (match Vlink.Streamq.pop q ~max:maxes.(!i mod Array.length maxes) with
     | Some part ->
       Bb.blit_dma ~src:part ~src_off:0 ~dst:out ~dst_off:!filled
         ~len:(Bb.length part);
       filled := !filled + Bb.length part
     | None -> Alcotest.fail "pop returned None on non-empty queue");
    incr i
  done;
  check_int "drained everything" 10_000 !filled;
  check_bool "byte stream intact across split pops" true (Bb.equal out src)

let test_streamq_pop_exact_across_chunks () =
  let q = Vlink.Streamq.create () in
  let src = Tutil.pattern_buf ~seed:9 600 in
  Vlink.Streamq.push q (Bb.sub src 0 100);
  Vlink.Streamq.push q (Bb.sub src 100 200);
  Vlink.Streamq.push q (Bb.sub src 300 300);
  let first = Vlink.Streamq.pop_exact q 250 in
  let second = Vlink.Streamq.pop_exact q 350 in
  check_bool "first exact read spans chunks" true
    (Bb.equal first (Bb.sub src 0 250));
  check_bool "second exact read gets the remainder" true
    (Bb.equal second (Bb.sub src 250 350));
  check_int "queue empty" 0 (Vlink.Streamq.length q)

let () =
  Alcotest.run "sched"
    [ ("pins",
       [ Alcotest.test_case "static policy E2/E9/E10/E11 byte-identical"
           `Quick test_static_pins ]);
      ("aggregation",
       [ Alcotest.test_case "no loss, no reorder, boundaries" `Quick
           test_agg_no_loss_no_reorder;
         Alcotest.test_case "flush on budget" `Quick test_agg_flush_on_budget;
         Alcotest.test_case "explicit flush" `Quick test_agg_explicit_flush;
         Alcotest.test_case "small-message throughput >= 2x" `Quick
           test_agg_throughput_2x ]);
      ("adaptive",
       [ Alcotest.test_case "idle poll reduction >= 5x" `Quick
           test_adaptive_poll_reduction ]);
      ("pool",
       [ Alcotest.test_case "slab reuse and bypass" `Quick test_bytebuf_pool ]);
      ("streamq",
       [ Alcotest.test_case "split pops keep the stream intact" `Quick
           test_streamq_split_pops;
         Alcotest.test_case "pop_exact across chunks" `Quick
           test_streamq_pop_exact_across_chunks ]);
    ]
