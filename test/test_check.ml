(* Padico_check (PR 4): replay tokens, schedule policies, the adapter
   conformance kit, schedule exploration + shrinking, regression tokens
   for the register-after-dispatch races the kit flushed out, the
   descriptive Proc error messages, and a decision-table property for
   Selector.choose over generated topologies. *)

module Sim = Engine.Sim
module Proc = Engine.Proc
module Time = Engine.Time
module Replay = Padico_check.Replay
module Conform = Padico_check.Conform
module Explore = Padico_check.Explore
module Plan = Padico_fault.Plan
module Prefs = Selector.Prefs
module Linkmodel = Simnet.Linkmodel

open Tutil

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---------- replay tokens ---------- *)

let all_policies =
  [ Sim.Fifo; Sim.Lifo; Sim.Starve_oldest; Sim.Random 0; Sim.Random 173 ]

let test_token_round_trip () =
  List.iter
    (fun policy ->
       let t = { Replay.case = "sysio/eof"; policy; plan_digest = "-" } in
       let s = Replay.to_string t in
       match Replay.of_string s with
       | Ok t' ->
         check_string "case survives" t.Replay.case t'.Replay.case;
         check_bool "policy survives" true (t.Replay.policy = t'.Replay.policy);
         check_string "digest survives" t.Replay.plan_digest
           t'.Replay.plan_digest
       | Error e -> Alcotest.failf "%s does not parse back: %s" s e)
    all_policies

let test_token_rejects_malformed () =
  let bad =
    [ ""; "nonsense"; "PCHK:v2:sysio/eof:fifo:-"; "PCHK:v1:sysio/eof:fifo";
      "PCHK:v1:sysio/eof:random:-"; "PCHK:v1::fifo:-";
      "PCHK:v1:sysio/eof:warp:-" ]
  in
  List.iter
    (fun s ->
       match Replay.of_string s with
       | Ok _ -> Alcotest.failf "%S should not parse" s
       | Error _ -> ())
    bad

let parse_plan text =
  match Plan.parse text with
  | Ok p -> p
  | Error e -> Alcotest.failf "plan %S: %s" text e

let test_plan_digest () =
  check_string "no plan digests to -" "-" (Replay.digest_plan None);
  let p1 = parse_plan "at 2ms link-down san\n" in
  let p2 = parse_plan "at 2ms  link-down   san\n" in
  let p3 = parse_plan "at 3ms link-down san\n" in
  check_string "digest is over parsed events, not spelling"
    (Replay.digest_plan (Some p1))
    (Replay.digest_plan (Some p2));
  check_bool "different plans, different digests" true
    (Replay.digest_plan (Some p1) <> Replay.digest_plan (Some p3));
  check_bool "a plan never digests to -" true
    (Replay.digest_plan (Some p1) <> "-")

(* ---------- schedule policies at the Sim level ---------- *)

(* Five events registered at the same timestamp: the policy decides their
   dispatch order, and nothing else about the run may change. *)
let dispatch_order policy =
  let sim = Sim.create () in
  Sim.set_policy sim policy;
  let order = ref [] in
  Sim.after sim 100 (fun () ->
      for i = 0 to 4 do
        Sim.after sim 0 (fun () -> order := i :: !order)
      done);
  Sim.run sim;
  List.rev !order

let test_policy_orders () =
  let fifo = dispatch_order Sim.Fifo in
  check_bool "fifo preserves registration order" true
    (fifo = [ 0; 1; 2; 3; 4 ]);
  check_bool "lifo reverses same-timestamp order" true
    (dispatch_order Sim.Lifo = [ 4; 3; 2; 1; 0 ]);
  List.iter
    (fun p ->
       let o = dispatch_order p in
       check_bool
         (Sim.policy_to_string p ^ " is a permutation")
         true
         (List.sort compare o = [ 0; 1; 2; 3; 4 ]);
       check_bool
         (Sim.policy_to_string p ^ " is deterministic")
         true
         (dispatch_order p = o))
    (Sim.Starve_oldest :: List.init 5 (fun i -> Sim.Random i));
  check_bool "starve-one does not reduce to fifo" true
    (dispatch_order Sim.Starve_oldest <> fifo);
  check_bool "some random seed deviates from fifo" true
    (List.exists
       (fun s -> dispatch_order (Sim.Random s) <> fifo)
       [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])

(* ---------- descriptive Proc errors ---------- *)

let test_suspend_outside_process () =
  match (Proc.suspend (fun (_ : unit -> unit) -> ()) : unit) with
  | () -> Alcotest.fail "suspend outside a process must raise"
  | exception Invalid_argument m ->
    check_bool "says where the rule was broken" true
      (contains m "outside a process")

let test_double_resume_message () =
  let sim = Sim.create () in
  let caught = ref None in
  let h =
    Proc.spawn sim ~name:"victim" (fun () ->
        Proc.suspend (fun resume ->
            Sim.after sim 10 (fun () ->
                resume ();
                try resume ()
                with Invalid_argument m -> caught := Some m)))
  in
  Sim.run sim;
  (match Proc.result h with
   | Some (Ok ()) -> ()
   | _ -> Alcotest.fail "victim should have finished");
  match !caught with
  | None -> Alcotest.fail "second resume must raise"
  | Some m ->
    check_bool "names the offence" true (contains m "resumed twice");
    check_bool "names the process" true (contains m "victim");
    check_bool "reports the process state" true (contains m "finished")

(* ---------- the conformance kit ---------- *)

let test_kit_green_under_fifo () =
  let s = Explore.explore ~policies:[ Sim.Fifo ] () in
  (match s.Explore.failures with
   | [] -> ()
   | f :: _ ->
     Alcotest.failf "%d obligation(s) violated; first: %s\n  %s"
       (List.length s.Explore.failures)
       f.Explore.token f.Explore.message);
  check_bool "kit covers >= 8 adapters" true (Conform.adapters_covered >= 8);
  check_bool "every adapter meets every obligation" true
    (s.Explore.cases_run >= Conform.adapters_covered * 5)

(* The failover e2e, through the kit: the resilient fixture's obligations
   must hold while the SAN carrier dies under the transfer — the transfer
   redials onto the LAN and the byte stream comes through intact. *)
let test_failover_through_kit () =
  let plan = parse_plan "at 50us link-down san\n" in
  let names = [ "resilient/no-loss"; "resilient/eof"; "resilient/close" ] in
  let s = Explore.explore ~plan ~names ~policies:[ Sim.Fifo ] () in
  check_int "all three cases selected" 3 s.Explore.cases_run;
  match s.Explore.failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.failf "failover e2e through the kit: %s\n  %s" f.Explore.token
      f.Explore.message

(* ---------- exploration, replay, shrinking ---------- *)

let find_demo_failure () =
  let s =
    Explore.explore ~demo:true ~names:[ "demo/" ]
      ~policies:(Explore.default_policies ~seeds:200)
      ()
  in
  check_int "one demo case" 1 s.Explore.cases_run;
  match s.Explore.failures with
  | [ f ] -> f
  | fs -> Alcotest.failf "expected one failure, got %d" (List.length fs)

let test_demo_bug_caught_within_seeds () =
  let f = find_demo_failure () in
  check_bool "fifo masks the planted bug" true (f.Explore.policy <> Sim.Fifo);
  check_bool "message names the race" true
    (contains f.Explore.message "before its handler was registered")

let test_replay_reproduces_deterministically () =
  let f = find_demo_failure () in
  match Explore.replay f.Explore.token with
  | Ok (Some f') ->
    check_string "same token" f.Explore.token f'.Explore.token;
    check_string "same message" f.Explore.message f'.Explore.message;
    (* And again: replay is a pure function of the token. *)
    (match Explore.replay f.Explore.token with
     | Ok (Some f'') -> check_string "stable" f'.Explore.token f''.Explore.token
     | _ -> Alcotest.fail "second replay diverged")
  | Ok None -> Alcotest.fail "token did not reproduce the failure"
  | Error e -> Alcotest.failf "replay: %s" e

let test_replay_guards () =
  (match Explore.replay "PCHK:v1:no-such/case:lifo:-" with
   | Error e -> check_bool "unknown case named" true (contains e "no-such/case")
   | Ok _ -> Alcotest.fail "unknown case must be an error");
  (* A token recorded without a plan refuses a supplied plan (and vice
     versa): the digest is the tamper seal. *)
  let plan = parse_plan "at 1ms link-down san\n" in
  match Explore.replay ~plan "PCHK:v1:demo/ordering:lifo:-" with
  | Error e -> check_bool "digest mismatch explained" true (contains e "digest")
  | Ok _ -> Alcotest.fail "plan digest mismatch must be an error"

let test_shrink_minimises () =
  (* The planted demo bug fails regardless of the fault plan, so every
     plan event is droppable: the shrinker must strip the plan entirely
     and re-digest the token to "-". *)
  let plan = parse_plan "at 1ms link-down san\nat 2ms link-up san\n" in
  let case =
    match
      List.find_opt
        (fun c -> c.Conform.case_name = "demo/ordering")
        (Conform.cases ~demo:true ())
    with
    | Some c -> c
    | None -> Alcotest.fail "demo case missing"
  in
  let f =
    match Explore.exec ~plan case Sim.Lifo with
    | Some f -> f
    | None -> Alcotest.fail "demo case should fail under lifo"
  in
  let shrunk_plan, policy, token = Explore.shrink ~plan f in
  check_bool "plan stripped" true (shrunk_plan = None);
  check_bool "policy stays simple" true (policy = Sim.Lifo);
  check_bool "token re-digested" true (contains token ":lifo:-");
  match Explore.replay token with
  | Ok (Some _) -> ()
  | _ -> Alcotest.fail "shrunk token must still reproduce"

(* ---------- regression: races fixed in this PR, pinned to tokens ------- *)

(* Each token is the coordinate under which the bug reproduced before its
   fix: replaying it must now pass. Keep these replayable — they are the
   cheapest proof the fixes hold under the exact interleaving that broke. *)
let race_regressions =
  [ (* tcp + vl_sysio: accept dispatched after the peer's FIN edge — the
       missed Peer_closed is now caught up at watch time. *)
    "PCHK:v1:sysio/eof:lifo:-";
    "PCHK:v1:sysio/close:starve:-";
    (* vl_pstream: member FIN parsed while the watch still pointed at the
       HELLO parser. *)
    "PCHK:v1:pstream/eof:lifo:-";
    (* madio: first message overtaking set_recv now parks in pending_rx. *)
    "PCHK:v1:madio/no-loss:lifo:-";
    "PCHK:v1:madio/connect:starve:-";
    (* circuit: delivery before set_recv now parks in pending_rx. *)
    "PCHK:v1:circuit-san/boundaries:lifo:-";
    (* vl_crypto / vl_adoc: close no longer guillotines posted frames,
       and inner Eof waits for the decode pipeline to drain. *)
    "PCHK:v1:crypto/close:lifo:-";
    "PCHK:v1:adoc/eof:lifo:-";
    (* resilient: a FIN arriving in the same flight as the carrier
       teardown it caused is still parsed on the dead link. *)
    "PCHK:v1:resilient/close:lifo:-" ]

let test_race_regressions () =
  List.iter
    (fun token ->
       match Explore.replay token with
       | Ok None -> ()
       | Ok (Some f) ->
         Alcotest.failf "regression resurfaced: %s\n  %s" token
           f.Explore.message
       | Error e -> Alcotest.failf "stale regression token %s: %s" token e)
    race_regressions

(* ---------- Selector.choose decision table ---------- *)

let seg_pool =
  [| ("san", Simnet.Presets.myrinet2000);
     ("sci", Simnet.Presets.sci);
     ("lan", Simnet.Presets.ethernet100);
     ("glan", Simnet.Presets.gigabit_lan);
     ("wan", Simnet.Presets.vthd);
     ("lossy", Simnet.Presets.transcontinental);
     ("modem", Simnet.Presets.modem) |]

(* One random topology + prefs per seed; check the published decision
   rules hold: loopback on self, SAN preference, VRP/pstream gating by
   class and prefs, adapter wrapping, and that down/excluded segments are
   never chosen. The oracle restates the decision table independently of
   the ranking, so a rule regression (not a ranking change) trips it. *)
let prop_selector_decision_table =
  QCheck.Test.make ~name:"decision table over random topologies" ~count:300
    QCheck.(int_bound 1_000_000)
    (fun seed ->
       let rng = Random.State.make [| seed |] in
       let net = Simnet.Net.create () in
       let a = Simnet.Net.add_node net "a" in
       let b = Simnet.Net.add_node net "b" in
       let nsegs = 1 + Random.State.int rng 3 in
       let segs =
         List.init nsegs (fun i ->
             let name, model =
               seg_pool.(Random.State.int rng (Array.length seg_pool))
             in
             Simnet.Net.add_segment net model
               ~name:(Printf.sprintf "%s%d" name i)
               [ a; b ])
       in
       List.iter
         (fun s ->
            if Random.State.int rng 4 = 0 then Simnet.Segment.set_down s true)
         segs;
       let exclude =
         List.filter (fun _ -> Random.State.int rng 4 = 0) segs
       in
       let rbool () = Random.State.bool rng in
       let prefs =
         { Prefs.default with
           Prefs.vrp_on_lossy = rbool (); pstream_on_wan = rbool ();
           adoc_on_slow = rbool (); cipher_untrusted = rbool ();
           vrp_tolerance = 0.01 *. float_of_int (Random.State.int rng 10);
           pstream_streams = 1 + Random.State.int rng 4 }
       in
       let src = a in
       let dst = if Random.State.int rng 8 = 0 then a else b in
       let usable =
         List.filter
           (fun s ->
              (not (Simnet.Segment.is_down s))
              && not
                   (List.exists
                      (fun e -> Simnet.Segment.uid e = Simnet.Segment.uid s)
                      exclude))
           segs
       in
       let self = Simnet.Node.uid src = Simnet.Node.uid dst in
       match Selector.choose ~prefs ~exclude net ~src ~dst with
       | exception Failure _ ->
         (* Legal exactly when there is nothing to choose from. *)
         (not self) && usable = []
       | c when self ->
         c.Selector.driver = "loopback" && c.Selector.segment = None
       | c ->
         let seg =
           match c.Selector.segment with
           | Some s -> s
           | None -> QCheck.Test.fail_report "non-loopback without a segment"
         in
         let m = Simnet.Segment.model seg in
         let cls = m.Linkmodel.class_ in
         let chosen_usable =
           List.exists
             (fun s -> Simnet.Segment.uid s = Simnet.Segment.uid seg)
             usable
         in
         let san_usable =
           List.exists
             (fun s ->
                (Simnet.Segment.model s).Linkmodel.class_ = Linkmodel.San)
             usable
         in
         let driver_ok =
           match c.Selector.driver with
           | "madio" -> cls = Linkmodel.San
           | "vrp" ->
             (not san_usable) && cls = Linkmodel.Lossy_wan
             && prefs.Prefs.vrp_on_lossy
             && c.Selector.vrp_tolerance = prefs.Prefs.vrp_tolerance
           | "pstream" ->
             (not san_usable) && cls = Linkmodel.Wan
             && prefs.Prefs.pstream_on_wan
             && c.Selector.streams = prefs.Prefs.pstream_streams
           | "sysio" ->
             (not san_usable)
             && (not (cls = Linkmodel.Lossy_wan && prefs.Prefs.vrp_on_lossy))
             && not (cls = Linkmodel.Wan && prefs.Prefs.pstream_on_wan)
           | d -> QCheck.Test.fail_report ("unknown driver " ^ d)
         in
         (* SAN preference is unconditional: if a SAN is usable, it wins. *)
         let san_pref_ok = (not san_usable) || c.Selector.driver = "madio" in
         let wrapped = c.Selector.driver <> "madio" in
         let slow =
           m.Linkmodel.bandwidth_bps <= prefs.Prefs.adoc_threshold_bps
         in
         let adoc_ok =
           c.Selector.wrap_adoc
           = (wrapped && prefs.Prefs.adoc_on_slow && slow
              && c.Selector.driver <> "vrp")
         in
         let crypto_ok =
           c.Selector.wrap_crypto
           = (wrapped && prefs.Prefs.cipher_untrusted
              && (not m.Linkmodel.trusted)
              && c.Selector.driver <> "vrp")
         in
         (* Pure decision: asking twice answers the same. *)
         let c2 = Selector.choose ~prefs ~exclude net ~src ~dst in
         let stable =
           c2.Selector.driver = c.Selector.driver
           && (match (c2.Selector.segment, c.Selector.segment) with
               | Some s2, Some s1 ->
                 Simnet.Segment.uid s2 = Simnet.Segment.uid s1
               | None, None -> true
               | _ -> false)
           && c2.Selector.wrap_adoc = c.Selector.wrap_adoc
           && c2.Selector.wrap_crypto = c.Selector.wrap_crypto
         in
         chosen_usable && driver_ok && san_pref_ok && adoc_ok && crypto_ok
         && stable)

(* ---------- suites ---------- *)

let () =
  Alcotest.run "check"
    [ ( "token",
        [ Alcotest.test_case "round trip" `Quick test_token_round_trip;
          Alcotest.test_case "rejects malformed" `Quick
            test_token_rejects_malformed;
          Alcotest.test_case "plan digest" `Quick test_plan_digest ] );
      ( "policy",
        [ Alcotest.test_case "same-timestamp orders" `Quick
            test_policy_orders ] );
      ( "proc-errors",
        [ Alcotest.test_case "suspend outside a process" `Quick
            test_suspend_outside_process;
          Alcotest.test_case "double resume" `Quick
            test_double_resume_message ] );
      ( "kit",
        [ Alcotest.test_case "green under fifo" `Quick
            test_kit_green_under_fifo;
          Alcotest.test_case "failover e2e via the kit" `Quick
            test_failover_through_kit ] );
      ( "explore",
        [ Alcotest.test_case "demo bug caught <= 200 seeds" `Quick
            test_demo_bug_caught_within_seeds;
          Alcotest.test_case "replay reproduces" `Quick
            test_replay_reproduces_deterministically;
          Alcotest.test_case "replay guards" `Quick test_replay_guards;
          Alcotest.test_case "shrink minimises" `Quick test_shrink_minimises ] );
      ( "regression",
        [ Alcotest.test_case "race fixes hold under pinned tokens" `Quick
            test_race_regressions ] );
      Tutil.qsuite "selector" [ prop_selector_decision_table ] ]
