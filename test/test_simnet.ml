module Bb = Engine.Bytebuf
module Sim = Engine.Sim
module Seg = Simnet.Segment
module Lm = Simnet.Linkmodel

let mk_model ?(loss = 0.0) ?(latency = 1_000) ?(bw = 1e8) ?(mtu = 1500)
    ?(jitter = 0) ?(turnaround = 0) () =
  { Lm.name = "test"; class_ = Lm.Lan; bandwidth_bps = bw;
    latency_ns = latency; jitter_ns = jitter; loss; mtu; frame_overhead = 0;
    turnaround_ns = turnaround; trusted = true }

let mk_pair ?loss ?latency ?bw ?mtu ?jitter ?turnaround () =
  Tutil.pair (mk_model ?loss ?latency ?bw ?mtu ?jitter ?turnaround ())

let raw ~src ~dst n =
  Simnet.Packet.make ~src ~dst ~proto:99 ~size:n
    (Simnet.Packet.Raw (Bb.create n))

(* ---------- Linkmodel ---------- *)

let test_serialization_time () =
  let m = mk_model ~bw:1e9 () in
  (* 1000 bytes at 1 GB/s = 1000 ns *)
  Tutil.check_int "1000B at 1GB/s" 1_000 (Lm.serialization_ns m 1_000)

let test_frame_overhead_counts () =
  let m = { (mk_model ~bw:1e9 ()) with Lm.frame_overhead = 100 } in
  Tutil.check_int "overhead added" 1_100 (Lm.serialization_ns m 1_000)

(* ---------- Segment delivery ---------- *)

let test_delivery_and_latency () =
  let net, a, b, seg = mk_pair ~latency:5_000 ~bw:1e9 () in
  let arrival = ref 0 in
  Seg.set_handler seg b ~proto:99 (fun _ ->
      arrival := Sim.now (Simnet.Net.sim net));
  Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 1_000);
  Tutil.run_net net;
  (* serialization 1000ns + latency 5000ns *)
  Tutil.check_int "arrival time" 6_000 !arrival;
  Tutil.check_int "delivered" 1 (Seg.frames_delivered seg)

let test_proto_demux () =
  let net, a, b, seg = mk_pair () in
  let got99 = ref 0 and got7 = ref 0 in
  Seg.set_handler seg b ~proto:99 (fun _ -> incr got99);
  Seg.set_handler seg b ~proto:7 (fun _ -> incr got7);
  Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 10);
  Seg.send seg
    (Simnet.Packet.make ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b)
       ~proto:7 ~size:10
       (Simnet.Packet.Raw (Bb.create 10)));
  Tutil.run_net net;
  Tutil.check_int "proto 99" 1 !got99;
  Tutil.check_int "proto 7" 1 !got7

let test_unclaimed_frames_counted () =
  let net, a, b, seg = mk_pair () in
  Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 10);
  Tutil.run_net net;
  Tutil.check_int "unclaimed" 1 (Seg.frames_unclaimed seg);
  Tutil.check_int "not delivered" 0 (Seg.frames_delivered seg)

let test_mtu_enforced () =
  let _net, a, b, seg = mk_pair ~mtu:100 () in
  Alcotest.check_raises "oversized frame"
    (Invalid_argument "Segment test: frame of 101 bytes exceeds MTU 100")
    (fun () ->
       Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 101))

let test_unattached_rejected () =
  let net, a, _b, seg = mk_pair () in
  let c = Simnet.Net.add_node net "c" in
  Alcotest.check_raises "unknown destination"
    (Invalid_argument "Segment test: node 2 not attached (send destination)")
    (fun () -> Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id c) 10))

let test_loss_statistics () =
  let net, a, b, seg = mk_pair ~loss:0.3 () in
  Seg.set_handler seg b ~proto:99 (fun _ -> ());
  let n = 5_000 in
  let rec send_next i =
    if i < n then begin
      Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 100);
      Sim.after (Simnet.Net.sim net) 10_000 (fun () -> send_next (i + 1))
    end
  in
  send_next 0;
  Tutil.run_net net ~until:(Engine.Time.sec 10);
  let lost = Seg.frames_lost seg in
  let ratio = float_of_int lost /. float_of_int n in
  Tutil.check_bool "loss near 30%" true (ratio > 0.26 && ratio < 0.34);
  Tutil.check_int "lost + delivered = sent" n
    (Seg.frames_lost seg + Seg.frames_delivered seg)

let test_egress_serializes () =
  (* Two frames sent back-to-back: second arrives one serialization later. *)
  let net, a, b, seg = mk_pair ~latency:0 ~bw:1e9 () in
  let arrivals = ref [] in
  Seg.set_handler seg b ~proto:99 (fun _ ->
      arrivals := Sim.now (Simnet.Net.sim net) :: !arrivals);
  Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 1_000);
  Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 1_000);
  Tutil.run_net net;
  (match List.rev !arrivals with
   | [ t1; t2 ] ->
     Tutil.check_int "first at ser" 1_000 t1;
     Tutil.check_int "second one ser later" 2_000 t2
   | _ -> Alcotest.fail "expected two arrivals")

let test_turnaround_only_back_to_back () =
  let net, a, b, seg = mk_pair ~latency:0 ~bw:1e9 ~turnaround:500 () in
  let arrivals = ref [] in
  Seg.set_handler seg b ~proto:99 (fun _ ->
      arrivals := Sim.now (Simnet.Net.sim net) :: !arrivals);
  (* Isolated frame: no turnaround. *)
  Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 1_000);
  (* Back-to-back second frame pays it. *)
  Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 1_000);
  Tutil.run_net net;
  (match List.rev !arrivals with
   | [ t1; t2 ] ->
     Tutil.check_int "isolated frame pays no gap" 1_000 t1;
     Tutil.check_int "queued frame pays the gap" 2_500 t2
   | _ -> Alcotest.fail "expected two arrivals")

let test_ingress_contention () =
  (* Two senders, one receiver: second frame queues at the input port. *)
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let b = Simnet.Net.add_node net "b" in
  let c = Simnet.Net.add_node net "c" in
  let seg = Simnet.Net.add_segment net (mk_model ~latency:0 ~bw:1e9 ()) [ a; b; c ] in
  let arrivals = ref [] in
  Seg.set_handler seg c ~proto:99 (fun pkt ->
      arrivals := (pkt.Simnet.Packet.src, Sim.now (Simnet.Net.sim net)) :: !arrivals);
  Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id c) 1_000);
  Seg.send seg (raw ~src:(Simnet.Node.id b) ~dst:(Simnet.Node.id c) 1_000);
  Tutil.run_net net;
  (match List.rev !arrivals with
   | [ (_, t1); (_, t2) ] ->
     Tutil.check_int "first uncontended" 1_000 t1;
     Tutil.check_int "second serialized behind" 2_000 t2
   | _ -> Alcotest.fail "expected two arrivals")

(* ---------- Node CPU ---------- *)

let test_cpu_serializes () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let sim = Simnet.Net.sim net in
  let finish = ref [] in
  Simnet.Node.cpu_async a 100 (fun () -> finish := Sim.now sim :: !finish);
  Simnet.Node.cpu_async a 50 (fun () -> finish := Sim.now sim :: !finish);
  Sim.run sim;
  Alcotest.(check (list int)) "queued work" [ 100; 150 ] (List.rev !finish)

let test_cpu_blocking () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let sim = Simnet.Net.sim net in
  let t = ref 0 in
  let h =
    Simnet.Node.spawn a (fun () ->
        Simnet.Node.cpu a 500;
        t := Sim.now sim)
  in
  Sim.run sim;
  Tutil.assert_done h;
  Tutil.check_int "blocked for cost" 500 !t

(* ---------- Net topology ---------- *)

let test_links_between () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  let b = Simnet.Net.add_node net "b" in
  let c = Simnet.Net.add_node net "c" in
  let myri = Simnet.Net.add_segment net Simnet.Presets.myrinet2000 [ a; b ] in
  let eth = Simnet.Net.add_segment net Simnet.Presets.ethernet100 [ a; b; c ] in
  let links_ab = Simnet.Net.links_between net a b in
  Tutil.check_int "a-b has two networks" 2 (List.length links_ab);
  Tutil.check_string "fastest first" (Seg.name myri)
    (Seg.name (List.hd links_ab));
  let links_ac = Simnet.Net.links_between net a c in
  Tutil.check_int "a-c only ethernet" 1 (List.length links_ac);
  Tutil.check_string "ethernet" (Seg.name eth) (Seg.name (List.hd links_ac));
  (match Simnet.Net.best_link net a b with
   | Some s -> Tutil.check_string "best is myrinet" (Seg.name myri) (Seg.name s)
   | None -> Alcotest.fail "expected a link")

let test_loopback_automatic () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  match Simnet.Net.links_between net a a with
  | [ lo ] ->
    Tutil.check_bool "loopback class" true
      ((Seg.model lo).Lm.class_ = Lm.Loop)
  | _ -> Alcotest.fail "expected exactly the loopback"

let test_node_by_id () =
  let net = Simnet.Net.create () in
  let a = Simnet.Net.add_node net "a" in
  Tutil.check_bool "found" true
    (match Simnet.Net.node_by_id net (Simnet.Node.id a) with
     | Some n -> n == a
     | None -> false);
  Tutil.check_bool "missing" true
    (Simnet.Net.node_by_id net 999 = None)

(* ---------- Presets sanity ---------- *)

let test_presets_sane () =
  let check_model m =
    Tutil.check_bool (m.Lm.name ^ " bandwidth positive") true
      (m.Lm.bandwidth_bps > 0.0);
    Tutil.check_bool (m.Lm.name ^ " loss in [0,1)") true
      (m.Lm.loss >= 0.0 && m.Lm.loss < 1.0);
    Tutil.check_bool (m.Lm.name ^ " mtu positive") true (m.Lm.mtu > 0)
  in
  List.iter check_model
    [ Simnet.Presets.myrinet2000; Simnet.Presets.sci;
      Simnet.Presets.ethernet100; Simnet.Presets.gigabit_lan;
      Simnet.Presets.vthd; Simnet.Presets.transcontinental;
      Simnet.Presets.modem; Simnet.Presets.loopback ];
  Tutil.check_bool "myrinet trusted SAN" true
    (Simnet.Presets.myrinet2000.Lm.trusted
     && Simnet.Presets.myrinet2000.Lm.class_ = Lm.San);
  Tutil.check_bool "transcontinental untrusted lossy" true
    ((not Simnet.Presets.transcontinental.Lm.trusted)
     && Simnet.Presets.transcontinental.Lm.class_ = Lm.Lossy_wan)

let () =
  Alcotest.run "simnet"
    [ ("linkmodel",
       [ Alcotest.test_case "serialization" `Quick test_serialization_time;
         Alcotest.test_case "frame overhead" `Quick test_frame_overhead_counts
       ]);
      ("segment",
       [ Alcotest.test_case "delivery+latency" `Quick test_delivery_and_latency;
         Alcotest.test_case "proto demux" `Quick test_proto_demux;
         Alcotest.test_case "unclaimed" `Quick test_unclaimed_frames_counted;
         Alcotest.test_case "mtu" `Quick test_mtu_enforced;
         Alcotest.test_case "unattached" `Quick test_unattached_rejected;
         Alcotest.test_case "loss stats" `Quick test_loss_statistics;
         Alcotest.test_case "egress serializes" `Quick test_egress_serializes;
         Alcotest.test_case "turnaround gap" `Quick
           test_turnaround_only_back_to_back;
         Alcotest.test_case "ingress contention" `Quick test_ingress_contention
       ]);
      ("node",
       [ Alcotest.test_case "cpu queue" `Quick test_cpu_serializes;
         Alcotest.test_case "cpu blocking" `Quick test_cpu_blocking ]);
      ("net",
       [ Alcotest.test_case "links_between" `Quick test_links_between;
         Alcotest.test_case "loopback" `Quick test_loopback_automatic;
         Alcotest.test_case "node_by_id" `Quick test_node_by_id ]);
      ("presets", [ Alcotest.test_case "sanity" `Quick test_presets_sane ]);
    ]
