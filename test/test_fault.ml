(* Padico_fault: plans, injection, timeouts, backoff, failover. *)

module Bb = Engine.Bytebuf
module Sim = Engine.Sim
module Time = Engine.Time
module Seg = Simnet.Segment
module Lm = Simnet.Linkmodel
module Vl = Vlink.Vl
module Plan = Padico_fault.Plan
module Inject = Padico_fault.Inject
module Backoff = Padico_fault.Backoff
module Timewheel = Padico_fault.Timewheel
module Obs = Padico_obs

let check_int = Tutil.check_int

let check_bool = Tutil.check_bool

let check_string = Tutil.check_string

(* ---------- plan parsing ---------- *)

let test_plan_parse () =
  let text =
    {|# a comment
at 5ms   link-down san
at 60ms  link-up san
at 1ms   loss-burst wan 0.3 for 10ms
at 1ms   latency-spike wan +8ms for 5ms
at 2ms   crash b
at 4ms   restart b
at 2ms   partition a1,a2 | b1,b2
at 6ms   heal
|}
  in
  match Plan.parse text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok plan ->
    check_int "8 events" 8 (List.length plan);
    (match plan with
     | { Plan.at_ns; action = Plan.Link_down l } :: _ ->
       check_int "5ms" (Time.ms 5) at_ns;
       check_string "san" "san" l
     | _ -> Alcotest.fail "first event should be link-down");
    (match List.nth plan 2 with
     | { Plan.action = Plan.Loss_burst { link; loss; duration_ns }; at_ns } ->
       check_string "wan" "wan" link;
       check_bool "loss 0.3" true (abs_float (loss -. 0.3) < 1e-9);
       check_int "for 10ms" (Time.ms 10) duration_ns;
       check_int "at 1ms" (Time.ms 1) at_ns
     | _ -> Alcotest.fail "third event should be loss-burst");
    match List.nth plan 6 with
    | { Plan.action = Plan.Partition { group_a; group_b }; _ } ->
      check_int "2 in a" 2 (List.length group_a);
      check_string "b1 first" "b1" (List.hd group_b)
    | _ -> Alcotest.fail "seventh event should be partition"

let test_plan_parse_errors () =
  (match Plan.parse "at 5ms link-down" with
   | Error e -> check_bool "names line" true (String.length e > 0)
   | Ok _ -> Alcotest.fail "missing target should not parse");
  (match Plan.parse "at 1ms loss-burst l 1.5 for 1ms" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "loss 1.5 should not parse");
  match Plan.parse "banana" with
  | Error e ->
    check_bool "mentions line 1" true
      (try
         ignore (Str.search_forward (Str.regexp "1") e 0);
         true
       with Not_found -> false)
  | Ok _ -> Alcotest.fail "garbage should not parse"

(* ---------- linkmodel validation ---------- *)

let test_linkmodel_validate () =
  let base = Simnet.Presets.ethernet100 in
  (match Lm.validate { base with Lm.loss = 1.5 } with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "loss > 1 must be rejected");
  (match Lm.validate { base with Lm.mtu = 0 } with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "mtu = 0 must be rejected");
  (match Lm.validate { base with Lm.bandwidth_bps = -1.0 } with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "negative bandwidth must be rejected");
  (* every preset passes its own validation by construction *)
  ignore (Lm.validate Simnet.Presets.myrinet2000);
  ignore (Lm.validate (Simnet.Presets.transcontinental_loss 0.01))

(* ---------- segment fault overlay ---------- *)

let raw ~src ~dst n =
  Simnet.Packet.make ~src ~dst ~proto:99 ~size:n
    (Simnet.Packet.Raw (Bb.create n))

let test_link_down_drops () =
  let net, a, b, seg = Tutil.pair ~seed:5 Simnet.Presets.ethernet100 in
  let got = ref 0 in
  Seg.set_handler seg b ~proto:99 (fun _ -> incr got);
  let send () =
    Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 100)
  in
  send ();
  Seg.set_down seg true;
  check_bool "is_down" true (Seg.is_down seg);
  send ();
  send ();
  Seg.set_down seg false;
  send ();
  Tutil.run_net net;
  check_int "two delivered" 2 !got;
  check_int "two faulted" 2 (Seg.frames_faulted seg)

let test_node_crash_blocks_traffic () =
  let net, a, b, seg = Tutil.pair ~seed:5 Simnet.Presets.ethernet100 in
  let got = ref 0 in
  Seg.set_handler seg b ~proto:99 (fun _ -> incr got);
  Simnet.Node.set_up b false;
  Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 100);
  Simnet.Node.set_up b true;
  Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 100);
  Tutil.run_net net;
  check_int "only post-restart frame" 1 !got;
  check_int "one faulted" 1 (Seg.frames_faulted seg)

let test_link_watcher_fires () =
  let _net, _a, _b, seg = Tutil.pair ~seed:5 Simnet.Presets.ethernet100 in
  let states = ref [] in
  Seg.on_link_state seg (fun up -> states := up :: !states);
  Seg.set_down seg true;
  Seg.set_down seg true (* no change, no event *);
  Seg.set_down seg false;
  check_bool "down then up" true (!states = [ true; false ])

let test_injector_schedules () =
  let net, a, b, seg = Tutil.pair ~seed:5 Simnet.Presets.ethernet100 in
  let got = ref 0 in
  Seg.set_handler seg b ~proto:99 (fun _ -> incr got);
  let plan =
    [ { Plan.at_ns = Time.ms 1; action = Plan.Link_down "net0" };
      { Plan.at_ns = Time.ms 3; action = Plan.Link_up "net0" } ]
  in
  let seg_name = Seg.name seg in
  let plan =
    List.map
      (fun e ->
         { e with
           Plan.action =
             (match e.Plan.action with
              | Plan.Link_down _ -> Plan.Link_down seg_name
              | Plan.Link_up _ -> Plan.Link_up seg_name
              | a -> a) })
      plan
  in
  let inj = Inject.apply net plan in
  check_int "2 pending" 2 (Inject.pending inj);
  (* send at 2ms (down) and 4ms (up again) *)
  Sim.at (Simnet.Net.sim net) (Time.ms 2) (fun () ->
      Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 10));
  Sim.at (Simnet.Net.sim net) (Time.ms 4) (fun () ->
      Seg.send seg (raw ~src:(Simnet.Node.id a) ~dst:(Simnet.Node.id b) 10));
  Tutil.run_net net;
  check_int "only the 4ms frame" 1 !got;
  check_int "all fired" 2 (Inject.fired inj);
  check_int "none pending" 0 (Inject.pending inj)

let test_injector_unknown_link () =
  let net, _a, _b, _seg = Tutil.pair ~seed:5 Simnet.Presets.ethernet100 in
  match
    Inject.apply net [ { Plan.at_ns = 0; action = Plan.Link_down "nope" } ]
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown link must be rejected eagerly"

(* ---------- backoff ---------- *)

(* Explicit let: [::] evaluates right-to-left, which would reverse the
   attempt order. *)
let rec take n b =
  if n = 0 then []
  else
    let d = Backoff.next b in
    d :: take (n - 1) b

let test_backoff_determinism () =
  let mk () =
    Backoff.create ~base_ns:1_000 ~factor:2.0 ~max_ns:16_000 ~jitter:0.25
      ~seed:99 ()
  in
  let s1 = take 10 (mk ()) and s2 = take 10 (mk ()) in
  check_bool "same seed, same delays" true (s1 = s2)

let test_backoff_bounds () =
  let b =
    Backoff.create ~base_ns:1_000 ~factor:2.0 ~max_ns:16_000 ~jitter:0.25
      ~seed:7 ()
  in
  List.iteri
    (fun i d ->
       let ideal = float_of_int (min 16_000 (1_000 * (1 lsl (min i 20)))) in
       check_bool
         (Printf.sprintf "delay %d within jitter of %f" d ideal)
         true
         (float_of_int d >= (0.75 *. ideal) -. 1.0
          && float_of_int d <= (1.25 *. ideal) +. 1.0))
    (take 12 b)

let test_backoff_no_jitter_reset () =
  let b =
    Backoff.create ~base_ns:500 ~factor:3.0 ~max_ns:1_000_000 ~jitter:0.0
      ~seed:1 ()
  in
  check_int "attempt 0" 500 (Backoff.next b);
  check_int "attempt 1" 1_500 (Backoff.next b);
  check_int "attempt 2" 4_500 (Backoff.next b);
  Backoff.reset b;
  check_int "reset to base" 500 (Backoff.next b)

(* ---------- timewheel ---------- *)

let test_timewheel_fires_after_deadline () =
  let sim = Sim.create () in
  let w = Timewheel.create ~slot_ns:1_000 sim in
  let fired_at = ref (-1) in
  ignore (Timewheel.arm w ~after_ns:2_500 (fun () -> fired_at := Sim.now sim));
  check_int "pending" 1 (Timewheel.pending w);
  Sim.run sim;
  check_bool "at or after deadline" true (!fired_at >= 2_500);
  check_bool "within one slot" true (!fired_at <= 3_000);
  check_int "none pending" 0 (Timewheel.pending w)

let test_timewheel_cancel () =
  let sim = Sim.create () in
  let w = Timewheel.create ~slot_ns:1_000 sim in
  let fired = ref false in
  let tm = Timewheel.arm w ~after_ns:2_000 (fun () -> fired := true) in
  Timewheel.cancel tm;
  Timewheel.cancel tm (* idempotent *);
  Sim.run sim;
  check_bool "cancelled timer never fires" false !fired;
  check_int "none pending" 0 (Timewheel.pending w)

let test_timewheel_shared () =
  let sim = Sim.create () in
  check_bool "same wheel per sim" true
    (Timewheel.for_sim sim == Timewheel.for_sim sim)

(* ---------- selector exclusion ---------- *)

let san_lan_grid ?(seed = 42) () =
  let grid = Padico.create ~seed () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  let san =
    Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san" [ a; b ]
  in
  let lan =
    Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]
  in
  (grid, a, b, san, lan)

let test_selector_exclude () =
  let grid, a, b, san, lan = san_lan_grid () in
  let net = Padico.net grid in
  let c1 = Selector.choose net ~src:a ~dst:b in
  check_string "prefers SAN" "madio" c1.Selector.driver;
  let c2 = Selector.choose ~exclude:[ san ] net ~src:a ~dst:b in
  check_string "falls back to sysio" "sysio" c2.Selector.driver;
  Seg.set_down san true;
  let c3 = Selector.choose net ~src:a ~dst:b in
  check_string "down SAN skipped" "sysio" c3.Selector.driver;
  Seg.set_down san false;
  (match Selector.choose ~exclude:[ san; lan ] net ~src:a ~dst:b with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "all links excluded must fail")

(* ---------- Vl timeouts ---------- *)

let test_vl_read_timeout () =
  let grid, a, b, _seg = Tutil.grid_pair ~seed:7 Simnet.Presets.ethernet100 in
  Padico.listen grid b ~port:4000 (fun _vl -> () (* silent peer *));
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:b ~port:4000 in
        (match Vl.await_connected vl with
         | Ok () -> ()
         | Error m -> Alcotest.failf "connect: %s" m);
        let t0 = Padico.now grid in
        match Vl.await (Vl.post_read ~timeout_ns:(Time.ms 5) vl (Bb.create 64)) with
        | Vl.Error "timeout" ->
          check_bool "not before the deadline" true
            (Padico.now grid - t0 >= Time.ms 5)
        | Vl.Error m -> Alcotest.failf "unexpected error %s" m
        | Vl.Done _ | Vl.Eof | Vl.Again -> Alcotest.fail "read should time out")
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

let test_vl_timeout_not_fired_when_served () =
  let grid, a, b, _seg = Tutil.grid_pair ~seed:7 Simnet.Presets.ethernet100 in
  Padico.listen grid b ~port:4001 (fun vl ->
      ignore (Vl.post_write vl (Tutil.pattern_buf ~seed:1 64)));
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:b ~port:4001 in
        (match Vl.await_connected vl with
         | Ok () -> ()
         | Error m -> Alcotest.failf "connect: %s" m);
        match
          Vl.await (Vl.post_read ~timeout_ns:(Time.sec 1) vl (Bb.create 64))
        with
        | Vl.Done n -> check_bool "got data" true (n > 0)
        | Vl.Eof | Vl.Again -> Alcotest.fail "eof"
        | Vl.Error m -> Alcotest.failf "error %s" m)
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

let test_vl_queued_timeout_does_not_block_successor () =
  (* Two reads posted; the first times out before any data, then data for
     the second arrives: the dead head must not swallow it. *)
  let grid, a, b, _seg = Tutil.grid_pair ~seed:7 Simnet.Presets.ethernet100 in
  Padico.listen grid b ~port:4002 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"late-writer" (fun () ->
             Engine.Proc.sleep (Simnet.Net.sim (Padico.net grid)) (Time.ms 10);
             ignore (Vl.post_write vl (Tutil.pattern_buf ~seed:2 32)))));
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:b ~port:4002 in
        (match Vl.await_connected vl with
         | Ok () -> ()
         | Error m -> Alcotest.failf "connect: %s" m);
        let r1 = Vl.post_read ~timeout_ns:(Time.ms 2) vl (Bb.create 64) in
        let r2 = Vl.post_read ~timeout_ns:(Time.sec 1) vl (Bb.create 64) in
        (match Vl.await r1 with
         | Vl.Error "timeout" -> ()
         | _ -> Alcotest.fail "first read should time out");
        match Vl.await r2 with
        | Vl.Done n -> check_int "successor got the data" 32 n
        | _ -> Alcotest.fail "second read should complete")
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

(* ---------- Peer_closed leaves no request pending (madio) ---------- *)

let test_madio_write_after_peer_close () =
  let grid, a, b, _seg =
    Tutil.grid_pair ~seed:3 Simnet.Presets.myrinet2000
  in
  Padico.listen grid b ~port:4100 (fun vl ->
      ignore (Padico.spawn grid b ~name:"closer" (fun () -> Vl.close vl)));
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        let vl = Padico.connect grid ~src:a ~dst:b ~port:4100 in
        (match Vl.await_connected vl with
         | Ok () -> ()
         | Error m -> Alcotest.failf "connect: %s" m);
        check_string "over madio" "madio" (Vl.driver_name vl);
        (* Eof on a read = the CLOSE has arrived. *)
        (match Vl.await (Vl.post_read vl (Bb.create 16)) with
         | Vl.Eof -> ()
         | _ -> Alcotest.fail "expected Eof after peer close");
        (* The old bug: this write sat in the queue forever. *)
        match Vl.await (Vl.post_write vl (Tutil.pattern_buf ~seed:3 128)) with
        | Vl.Error _ -> ()
        | Vl.Done _ | Vl.Eof | Vl.Again ->
          Alcotest.fail "write after peer close must fail")
  in
  Tutil.run_grid grid;
  Tutil.assert_done h

(* ---------- failover ---------- *)

let echo_server grid node vl =
  ignore
    (Padico.spawn grid node ~name:"echo" (fun () ->
         let buf = Bb.create 65_536 in
         let rec loop () =
           match Vl.await (Vl.post_read vl buf) with
           | Vl.Done n ->
             (match Vl.await (Vl.post_write vl (Bb.sub buf 0 n)) with
              | Vl.Done _ -> loop ()
              | Vl.Eof | Vl.Again | Vl.Error _ -> ())
           | Vl.Eof | Vl.Again | Vl.Error _ -> ()
         in
         loop ()))

let run_failover_transfer ~seed ~total ~plan_text () =
  let grid, a, b, _san, _lan = san_lan_grid ~seed () in
  Resilient.listen grid b ~port:9000 (echo_server grid b);
  let conn = Resilient.connect grid ~src:a ~dst:b ~port:9000 in
  let cvl = Resilient.vl conn in
  let received = ref 0 in
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        (match Vl.await_connected cvl with
         | Ok () -> ()
         | Error m -> Alcotest.failf "connect: %s" m);
        let chunk = 65_536 in
        let sent = ref 0 in
        while !sent < total do
          let n = min chunk (total - !sent) in
          ignore (Vl.post_write cvl (Tutil.pattern_buf ~seed:!sent n));
          sent := !sent + n
        done;
        let buf = Bb.create 65_536 in
        let rec rd () =
          if !received < total then
            match Vl.await (Vl.post_read cvl buf) with
            | Vl.Done n ->
              received := !received + n;
              rd ()
            | Vl.Eof | Vl.Again -> ()
            | Vl.Error m -> Alcotest.failf "read: %s" m
        in
        rd ())
  in
  (match Plan.parse plan_text with
   | Ok plan -> ignore (Inject.apply (Padico.net grid) plan)
   | Error e -> Alcotest.failf "plan: %s" e);
  Tutil.run_grid grid;
  Tutil.assert_done h;
  check_int "all bytes echoed" total !received;
  Resilient.stats conn

(* The plain SAN->LAN transfer e2e moved to the conformance kit: the
   resilient fixture's obligations run under a link-down plan in
   test_check.ml (and under every schedule policy via `padico_cli check`).
   What stays here is what the kit does not assert: the stats counters
   and the trace/determinism contract. *)

let test_resilient_clean_run_no_failover () =
  let st =
    run_failover_transfer ~seed:42 ~total:200_000 ~plan_text:"" ()
  in
  check_int "no switches" 0 st.Resilient.switches;
  check_int "no retries" 0 st.Resilient.retries;
  check_int "no downtime" 0 st.Resilient.downtime_ns;
  check_string "still on the SAN" "madio" st.Resilient.driver

let test_failover_events_and_determinism () =
  (* Two identical runs with tracing on must export byte-identical traces,
     fault plan, retries, failover and all. *)
  let run () =
    Obs.Trace.enable ();
    let st =
      run_failover_transfer ~seed:11 ~total:300_000
        ~plan_text:"at 1ms link-down san\n" ()
    in
    let s = Obs.Export_chrome.to_string () in
    Obs.Trace.disable ();
    Obs.Trace.clear ();
    (st, s)
  in
  let st, t1 = run () in
  let _, t2 = run () in
  check_bool "traces byte-identical" true (String.equal t1 t2);
  check_bool "switched adapters" true (st.Resilient.switches >= 1);
  check_string "running on sysio" "sysio" st.Resilient.driver;
  check_bool "retried" true (st.Resilient.retries >= 1);
  check_bool "downtime measured" true (st.Resilient.downtime_ns > 0);
  check_bool "has a failover event" true
    (try
       ignore (Str.search_forward (Str.regexp "resilience.failover") t1 0);
       true
     with Not_found -> false);
  check_bool "has retry events" true
    (try
       ignore (Str.search_forward (Str.regexp "resilience.retry") t1 0);
       true
     with Not_found -> false);
  check_bool "has fault events" true
    (try
       ignore (Str.search_forward (Str.regexp "fault.link-down") t1 0);
       true
     with Not_found -> false)

(* ---------- property: every posted request completes under faults ------- *)

let random_plan rng seg_name =
  let n = 1 + Engine.Rng.int rng 4 in
  let events = ref [] in
  for _ = 1 to n do
    let at_ns = Time.ms (1 + Engine.Rng.int rng 30) in
    let action =
      match Engine.Rng.int rng 3 with
      | 0 ->
        Plan.Loss_burst
          { link = seg_name; loss = 0.2 +. (0.6 *. Engine.Rng.float rng 1.0);
            duration_ns = Time.ms (1 + Engine.Rng.int rng 10) }
      | 1 ->
        Plan.Latency_spike
          { link = seg_name; add_ns = Time.ms (1 + Engine.Rng.int rng 5);
            duration_ns = Time.ms (1 + Engine.Rng.int rng 10) }
      | _ -> Plan.Link_down seg_name
    in
    events := { Plan.at_ns; action } :: !events;
    (* every link-down heals later so TCP can finish retransmitting *)
    match action with
    | Plan.Link_down _ ->
      events :=
        { Plan.at_ns = at_ns + Time.ms (1 + Engine.Rng.int rng 5);
          action = Plan.Link_up seg_name }
        :: !events
    | _ -> ()
  done;
  !events

let prop_requests_complete =
  QCheck.Test.make ~name:"every posted request completes under faults"
    ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
       let grid, a, b, seg =
         Tutil.grid_pair ~seed Simnet.Presets.ethernet100
       in
       let rng = Engine.Rng.create seed in
       ignore (Inject.apply (Padico.net grid) (random_plan rng (Seg.name seg)));
       Padico.listen grid b ~port:5000 (echo_server grid b);
       let reqs = ref [] in
       ignore
         (Padico.spawn grid a ~name:"client" (fun () ->
              let vl = Padico.connect grid ~src:a ~dst:b ~port:5000 in
              match Vl.await_connected vl with
              | Error _ -> () (* connect itself may die: nothing posted *)
              | Ok () ->
                for i = 0 to 9 do
                  reqs :=
                    Vl.post_write ~timeout_ns:(Time.ms 100) vl
                      (Tutil.pattern_buf ~seed:i 512)
                    :: !reqs;
                  reqs :=
                    Vl.post_read ~timeout_ns:(Time.ms 100) vl (Bb.create 512)
                    :: !reqs
                done));
       Tutil.run_grid grid;
       List.for_all (fun r -> Vl.poll r <> None) !reqs)

(* ---------- suite ---------- *)

let () =
  Alcotest.run "fault"
    [ ( "plan",
        [ Alcotest.test_case "parse" `Quick test_plan_parse;
          Alcotest.test_case "parse errors" `Quick test_plan_parse_errors ] );
      ( "linkmodel",
        [ Alcotest.test_case "validate" `Quick test_linkmodel_validate ] );
      ( "overlay",
        [ Alcotest.test_case "link down drops" `Quick test_link_down_drops;
          Alcotest.test_case "node crash blocks" `Quick
            test_node_crash_blocks_traffic;
          Alcotest.test_case "link watcher" `Quick test_link_watcher_fires ] );
      ( "inject",
        [ Alcotest.test_case "scheduled window" `Quick test_injector_schedules;
          Alcotest.test_case "unknown link" `Quick test_injector_unknown_link
        ] );
      ( "backoff",
        [ Alcotest.test_case "determinism" `Quick test_backoff_determinism;
          Alcotest.test_case "bounds" `Quick test_backoff_bounds;
          Alcotest.test_case "no jitter + reset" `Quick
            test_backoff_no_jitter_reset ] );
      ( "timewheel",
        [ Alcotest.test_case "fires after deadline" `Quick
            test_timewheel_fires_after_deadline;
          Alcotest.test_case "cancel" `Quick test_timewheel_cancel;
          Alcotest.test_case "shared per sim" `Quick test_timewheel_shared ] );
      ( "selector",
        [ Alcotest.test_case "exclude + down" `Quick test_selector_exclude ] );
      ( "vl-timeout",
        [ Alcotest.test_case "read times out" `Quick test_vl_read_timeout;
          Alcotest.test_case "served in time" `Quick
            test_vl_timeout_not_fired_when_served;
          Alcotest.test_case "dead head skipped" `Quick
            test_vl_queued_timeout_does_not_block_successor ] );
      ( "peer-closed",
        [ Alcotest.test_case "madio write fails, not hangs" `Quick
            test_madio_write_after_peer_close ] );
      ( "failover",
        [ Alcotest.test_case "clean run" `Quick
            test_resilient_clean_run_no_failover;
          Alcotest.test_case "events + determinism" `Quick
            test_failover_events_and_determinism ] );
      Tutil.qsuite "properties" [ prop_requests_complete ] ]
