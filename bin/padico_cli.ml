(* padico-cli: explore the framework from the command line.

     padico_cli registry
     padico_cli selector  --net vthd [--pstream] [--adoc] [--vrp] [--no-cipher]
     padico_cli ping      --net myrinet --middleware corba --iters 1000
     padico_cli bandwidth --net vthd --middleware vio --mbytes 16 [--pstream N]
     padico_cli trace     --net vthd --iters 50 -o trace.json

   All measurements are virtual-time results from the simulator. *)

open Cmdliner

let nets =
  [ ("myrinet", Simnet.Presets.myrinet2000); ("sci", Simnet.Presets.sci);
    ("ethernet", Simnet.Presets.ethernet100);
    ("gigabit", Simnet.Presets.gigabit_lan); ("vthd", Simnet.Presets.vthd);
    ("lossy", Simnet.Presets.transcontinental);
    ("modem", Simnet.Presets.modem) ]

let net_conv =
  Arg.enum (List.map (fun (n, m) -> (n, m)) nets)

let net_arg =
  Arg.(value & opt net_conv Simnet.Presets.myrinet2000
       & info [ "net" ] ~docv:"NET"
         ~doc:"Network between the two nodes: $(b,myrinet), $(b,sci), \
               $(b,ethernet), $(b,gigabit), $(b,vthd), $(b,lossy), \
               $(b,modem).")

type mw = Vio_mw | Mpi_mw | Corba of Mw_corba.Cdr.profile | Java_mw

let mw_conv =
  Arg.enum
    [ ("vio", Vio_mw); ("mpi", Mpi_mw);
      ("omniorb4", Corba Mw_corba.Cdr.omniorb4);
      ("omniorb3", Corba Mw_corba.Cdr.omniorb3);
      ("mico", Corba Mw_corba.Cdr.mico);
      ("orbacus", Corba Mw_corba.Cdr.orbacus); ("java", Java_mw) ]

let mw_arg =
  Arg.(value & opt mw_conv Vio_mw
       & info [ "middleware"; "m" ] ~docv:"MW"
         ~doc:"Middleware: $(b,vio), $(b,mpi), $(b,omniorb4), \
               $(b,omniorb3), $(b,mico), $(b,orbacus), $(b,java).")

let prefs_term =
  let pstream =
    Arg.(value & opt (some int) None
         & info [ "pstream" ] ~docv:"N" ~doc:"Stripe WAN links over N sockets.")
  in
  let adoc =
    Arg.(value & flag & info [ "adoc" ] ~doc:"Adaptive compression on slow links.")
  in
  let vrp =
    Arg.(value & flag & info [ "vrp" ] ~doc:"Tunable-loss transport on lossy WANs.")
  in
  let no_cipher =
    Arg.(value & flag & info [ "no-cipher" ] ~doc:"Never cipher, even untrusted links.")
  in
  let make pstream adoc vrp no_cipher =
    let p = Selector.Prefs.default in
    { p with
      Selector.Prefs.pstream_on_wan = pstream <> None;
      pstream_streams = Option.value ~default:p.Selector.Prefs.pstream_streams pstream;
      adoc_on_slow = adoc;
      adoc_threshold_bps = (if adoc then 15e6 else p.Selector.Prefs.adoc_threshold_bps);
      vrp_on_lossy = vrp;
      cipher_untrusted = not no_cipher }
  in
  Term.(const make $ pstream $ adoc $ vrp $ no_cipher)

(* ---------- registry ---------- *)

let registry_cmd =
  let run () =
    ignore (Padico.create ());
    List.iter
      (fun e -> Format.printf "%a@." Padico.Registry.pp_entry e)
      (Padico.Registry.all ())
  in
  Cmd.v (Cmd.info "registry" ~doc:"List registered drivers/adapters/personalities.")
    Term.(const run $ const ())

(* ---------- selector ---------- *)

let selector_cmd =
  let run model prefs =
    let grid = Padico.create ~prefs () in
    let a = Padico.add_node grid "a" in
    let b = Padico.add_node grid "b" in
    ignore (Padico.add_segment grid model [ a; b ]);
    let choice = Padico.connect_choice grid ~src:a ~dst:b in
    Format.printf "link model : %a@." Simnet.Linkmodel.pp model;
    Format.printf "selector   : %a@." Selector.pp_choice choice
  in
  Cmd.v (Cmd.info "selector" ~doc:"Show which adapter the selector would pick.")
    Term.(const run $ net_arg $ prefs_term)

(* ---------- ping ---------- *)

let iters_arg =
  Arg.(value & opt int 1000 & info [ "iters" ] ~docv:"N" ~doc:"Ping-pong rounds.")

let ping_cmd =
  let run model prefs mw iters =
    let grid, a, b = Scenario.pair model ~prefs () in
    let lat =
      match mw with
      | Vio_mw -> Scenario.vio_latency grid ~src:a ~dst:b ~port:4000 ~size:4 ~iters
      | Mpi_mw ->
        let comms = Scenario.mpi_pair grid a b in
        Scenario.mpi_latency grid comms ~a ~b ~iters
      | Corba profile -> Scenario.corba_latency ~profile grid ~a ~b ~port:3000 ~iters
      | Java_mw -> Scenario.java_latency grid ~a ~b ~port:7000 ~iters
    in
    Printf.printf "one-way latency: %.2f us (%d iterations)\n" lat iters
  in
  Cmd.v (Cmd.info "ping" ~doc:"One-way latency of a middleware over a network.")
    Term.(const run $ net_arg $ prefs_term $ mw_arg $ iters_arg)

(* ---------- bandwidth ---------- *)

let mbytes_arg =
  Arg.(value & opt int 32 & info [ "mbytes" ] ~docv:"MB" ~doc:"Payload volume.")

let chunk_arg =
  Arg.(value & opt int 65536 & info [ "chunk" ] ~docv:"BYTES" ~doc:"Write size.")

let bandwidth_cmd =
  let run model prefs mw mbytes chunk =
    let grid, a, b = Scenario.pair model ~prefs () in
    let total = mbytes * 1_000_000 in
    let bw =
      match mw with
      | Vio_mw -> Scenario.vio_stream_bw grid ~src:a ~dst:b ~port:5000 ~total ~chunk
      | Mpi_mw ->
        let comms = Scenario.mpi_pair grid a b in
        Scenario.mpi_stream_bw grid comms ~a ~b ~size:chunk ~count:(total / chunk)
      | Corba profile ->
        Scenario.corba_stream_bw ~profile grid ~a ~b ~port:3000 ~size:chunk
          ~count:(total / chunk)
      | Java_mw ->
        Scenario.java_stream_bw grid ~a ~b ~port:7000 ~size:chunk
          ~count:(total / chunk)
    in
    Printf.printf "bandwidth: %.2f MB/s (%d MB in %d-byte writes)\n" bw mbytes
      chunk
  in
  Cmd.v (Cmd.info "bandwidth" ~doc:"Streaming bandwidth of a middleware over a network.")
    Term.(const run $ net_arg $ prefs_term $ mw_arg $ mbytes_arg $ chunk_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let out_arg =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Where to write the Chrome trace-event JSON (load it in \
                 about:tracing or ui.perfetto.dev).")
  in
  let capacity_arg =
    Arg.(value & opt int 65536
         & info [ "capacity" ] ~docv:"N" ~doc:"Trace ring-buffer capacity.")
  in
  let run model prefs mw iters out capacity =
    (* Enable before building the grid so selection-layer events (which
       fire at connect time) are captured too. *)
    Padico_obs.Metrics.reset ();
    Padico_obs.Trace.enable ~capacity ();
    let grid, a, b = Scenario.pair model ~prefs () in
    let lat =
      match mw with
      | Vio_mw -> Scenario.vio_latency grid ~src:a ~dst:b ~port:4000 ~size:4 ~iters
      | Mpi_mw ->
        let comms = Scenario.mpi_pair grid a b in
        Scenario.mpi_latency grid comms ~a ~b ~iters
      | Corba profile -> Scenario.corba_latency ~profile grid ~a ~b ~port:3000 ~iters
      | Java_mw -> Scenario.java_latency grid ~a ~b ~port:7000 ~iters
    in
    Padico_obs.Trace.disable ();
    Padico_obs.Export_chrome.write_file out;
    (* Sanity-check our own output: parse it back and count events per
       layer, so a broken export fails loudly rather than in the viewer. *)
    let ic = open_in out in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    (match Padico_obs.Json.parse contents with
     | Error msg -> failwith ("exported trace is not valid JSON: " ^ msg)
     | Ok _ -> ());
    Format.printf "%a@." Padico_obs.Export_summary.pp ();
    Printf.printf "one-way latency: %.2f us (%d iterations)\n" lat iters;
    Printf.printf "trace: %d records (%d dropped) -> %s\n"
      (Padico_obs.Trace.length ()) (Padico_obs.Trace.dropped ()) out
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a ping-pong scenario with virtual-time tracing enabled; \
             write a Chrome trace-event JSON and print the metrics summary.")
    Term.(const run $ net_arg $ prefs_term $ mw_arg $ iters_arg $ out_arg
          $ capacity_arg)

let () =
  let doc = "PadicoTM-style grid communication framework (simulated)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "padico_cli" ~doc)
          [ registry_cmd; selector_cmd; ping_cmd; bandwidth_cmd; trace_cmd ]))
