(* padico-cli: explore the framework from the command line.

     padico_cli registry
     padico_cli selector  --net vthd [--pstream] [--adoc] [--vrp] [--no-cipher]
     padico_cli ping      --net myrinet --middleware corba --iters 1000
     padico_cli bandwidth --net vthd --middleware vio --mbytes 16 [--pstream N]
     padico_cli trace     --net vthd --iters 50 -o trace.json

   Measurements are virtual-time results from the simulator by default;
   $(b,--backend host) (where accepted) runs the same program over real
   Unix sockets and reports wall-clock numbers instead. *)

open Cmdliner

let nets =
  [ ("myrinet", Simnet.Presets.myrinet2000); ("sci", Simnet.Presets.sci);
    ("ethernet", Simnet.Presets.ethernet100);
    ("gigabit", Simnet.Presets.gigabit_lan); ("vthd", Simnet.Presets.vthd);
    ("lossy", Simnet.Presets.transcontinental);
    ("modem", Simnet.Presets.modem) ]

let net_conv =
  Arg.enum (List.map (fun (n, m) -> (n, m)) nets)

let net_arg =
  Arg.(value & opt net_conv Simnet.Presets.myrinet2000
       & info [ "net" ] ~docv:"NET"
         ~doc:"Network between the two nodes: $(b,myrinet), $(b,sci), \
               $(b,ethernet), $(b,gigabit), $(b,vthd), $(b,lossy), \
               $(b,modem).")

let backend_arg =
  Arg.(value
       & opt (enum [ ("sim", Padico.Sim); ("host", Padico.Host) ]) Padico.Sim
       & info [ "backend" ] ~docv:"BACKEND"
         ~doc:"Execution backend: $(b,sim) (virtual clock, default) or \
               $(b,host) (real Unix sockets, wall-clock time).")

type mw = Vio_mw | Mpi_mw | Corba of Mw_corba.Cdr.profile | Java_mw

let mw_conv =
  Arg.enum
    [ ("vio", Vio_mw); ("mpi", Mpi_mw);
      ("omniorb4", Corba Mw_corba.Cdr.omniorb4);
      ("omniorb3", Corba Mw_corba.Cdr.omniorb3);
      ("mico", Corba Mw_corba.Cdr.mico);
      ("orbacus", Corba Mw_corba.Cdr.orbacus); ("java", Java_mw) ]

let mw_arg =
  Arg.(value & opt mw_conv Vio_mw
       & info [ "middleware"; "m" ] ~docv:"MW"
         ~doc:"Middleware: $(b,vio), $(b,mpi), $(b,omniorb4), \
               $(b,omniorb3), $(b,mico), $(b,orbacus), $(b,java).")

let prefs_term =
  let pstream =
    Arg.(value & opt (some int) None
         & info [ "pstream" ] ~docv:"N" ~doc:"Stripe WAN links over N sockets.")
  in
  let adoc =
    Arg.(value & flag & info [ "adoc" ] ~doc:"Adaptive compression on slow links.")
  in
  let vrp =
    Arg.(value & flag & info [ "vrp" ] ~doc:"Tunable-loss transport on lossy WANs.")
  in
  let no_cipher =
    Arg.(value & flag & info [ "no-cipher" ] ~doc:"Never cipher, even untrusted links.")
  in
  let make pstream adoc vrp no_cipher =
    let p = Selector.Prefs.default in
    { p with
      Selector.Prefs.pstream_on_wan = pstream <> None;
      pstream_streams = Option.value ~default:p.Selector.Prefs.pstream_streams pstream;
      adoc_on_slow = adoc;
      adoc_threshold_bps = (if adoc then 15e6 else p.Selector.Prefs.adoc_threshold_bps);
      vrp_on_lossy = vrp;
      cipher_untrusted = not no_cipher }
  in
  Term.(const make $ pstream $ adoc $ vrp $ no_cipher)

(* ---------- registry ---------- *)

let registry_cmd =
  let run () =
    ignore (Padico.create ());
    List.iter
      (fun e -> Format.printf "%a@." Padico.Registry.pp_entry e)
      (Padico.Registry.all ())
  in
  Cmd.v (Cmd.info "registry" ~doc:"List registered drivers/adapters/personalities.")
    Term.(const run $ const ())

(* ---------- selector ---------- *)

let selector_cmd =
  let run model prefs =
    let grid = Padico.create ~prefs () in
    let a = Padico.add_node grid "a" in
    let b = Padico.add_node grid "b" in
    ignore (Padico.add_segment grid model [ a; b ]);
    let choice = Padico.connect_choice grid ~src:a ~dst:b in
    Format.printf "link model : %a@." Simnet.Linkmodel.pp model;
    Format.printf "selector   : %a@." Selector.pp_choice choice
  in
  Cmd.v (Cmd.info "selector" ~doc:"Show which adapter the selector would pick.")
    Term.(const run $ net_arg $ prefs_term)

(* ---------- ping ---------- *)

let iters_arg =
  Arg.(value & opt int 1000 & info [ "iters" ] ~docv:"N" ~doc:"Ping-pong rounds.")

let ping_cmd =
  let run model prefs backend mw iters =
    let grid, a, b = Scenario.pair model ~prefs ~backend () in
    let lat =
      match mw with
      | Vio_mw -> Scenario.vio_latency grid ~src:a ~dst:b ~port:4000 ~size:4 ~iters
      | Mpi_mw ->
        let comms = Scenario.mpi_pair grid a b in
        Scenario.mpi_latency grid comms ~a ~b ~iters
      | Corba profile -> Scenario.corba_latency ~profile grid ~a ~b ~port:3000 ~iters
      | Java_mw -> Scenario.java_latency grid ~a ~b ~port:7000 ~iters
    in
    Printf.printf "one-way latency: %.2f us (%d iterations%s)\n" lat iters
      (if backend = Padico.Host then ", wall-clock" else "")
  in
  Cmd.v (Cmd.info "ping" ~doc:"One-way latency of a middleware over a network.")
    Term.(const run $ net_arg $ prefs_term $ backend_arg $ mw_arg $ iters_arg)

(* ---------- bandwidth ---------- *)

let mbytes_arg =
  Arg.(value & opt int 32 & info [ "mbytes" ] ~docv:"MB" ~doc:"Payload volume.")

let chunk_arg =
  Arg.(value & opt int 65536 & info [ "chunk" ] ~docv:"BYTES" ~doc:"Write size.")

let bandwidth_cmd =
  let run model prefs backend mw mbytes chunk =
    let grid, a, b = Scenario.pair model ~prefs ~backend () in
    let total = mbytes * 1_000_000 in
    let bw =
      match mw with
      | Vio_mw -> Scenario.vio_stream_bw grid ~src:a ~dst:b ~port:5000 ~total ~chunk
      | Mpi_mw ->
        let comms = Scenario.mpi_pair grid a b in
        Scenario.mpi_stream_bw grid comms ~a ~b ~size:chunk ~count:(total / chunk)
      | Corba profile ->
        Scenario.corba_stream_bw ~profile grid ~a ~b ~port:3000 ~size:chunk
          ~count:(total / chunk)
      | Java_mw ->
        Scenario.java_stream_bw grid ~a ~b ~port:7000 ~size:chunk
          ~count:(total / chunk)
    in
    Printf.printf "bandwidth: %.2f MB/s (%d MB in %d-byte writes%s)\n" bw
      mbytes chunk (if backend = Padico.Host then ", wall-clock" else "")
  in
  Cmd.v (Cmd.info "bandwidth" ~doc:"Streaming bandwidth of a middleware over a network.")
    Term.(const run $ net_arg $ prefs_term $ backend_arg $ mw_arg $ mbytes_arg
          $ chunk_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let out_arg =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Where to write the Chrome trace-event JSON (load it in \
                 about:tracing or ui.perfetto.dev).")
  in
  let capacity_arg =
    Arg.(value & opt int 65536
         & info [ "capacity" ] ~docv:"N" ~doc:"Trace ring-buffer capacity.")
  in
  let run model prefs mw iters out capacity =
    (* Enable before building the grid so selection-layer events (which
       fire at connect time) are captured too. *)
    Padico_obs.Metrics.reset ();
    Padico_obs.Trace.enable ~capacity ();
    let grid, a, b = Scenario.pair model ~prefs () in
    let lat =
      match mw with
      | Vio_mw -> Scenario.vio_latency grid ~src:a ~dst:b ~port:4000 ~size:4 ~iters
      | Mpi_mw ->
        let comms = Scenario.mpi_pair grid a b in
        Scenario.mpi_latency grid comms ~a ~b ~iters
      | Corba profile -> Scenario.corba_latency ~profile grid ~a ~b ~port:3000 ~iters
      | Java_mw -> Scenario.java_latency grid ~a ~b ~port:7000 ~iters
    in
    Padico_obs.Trace.disable ();
    Padico_obs.Export_chrome.write_file out;
    (* Sanity-check our own output: parse it back and count events per
       layer, so a broken export fails loudly rather than in the viewer. *)
    let ic = open_in out in
    let len = in_channel_length ic in
    let contents = really_input_string ic len in
    close_in ic;
    (match Padico_obs.Json.parse contents with
     | Error msg -> failwith ("exported trace is not valid JSON: " ^ msg)
     | Ok _ -> ());
    Format.printf "%a@." Padico_obs.Export_summary.pp ();
    Printf.printf "one-way latency: %.2f us (%d iterations)\n" lat iters;
    Printf.printf "trace: %d records (%d dropped) -> %s\n"
      (Padico_obs.Trace.length ()) (Padico_obs.Trace.dropped ()) out
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a ping-pong scenario with virtual-time tracing enabled; \
             write a Chrome trace-event JSON and print the metrics summary.")
    Term.(const run $ net_arg $ prefs_term $ mw_arg $ iters_arg $ out_arg
          $ capacity_arg)

(* ---------- fault ---------- *)

let fault_cmd =
  let plan_arg =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"PLAN"
           ~doc:"Fault plan file (one event per line, e.g. \
                 $(b,at 2ms link-down san)). Omit it for a clean run.")
  in
  let expr_arg =
    Arg.(value & opt_all string []
         & info [ "e"; "event" ] ~docv:"EVENT"
           ~doc:"Inline plan event (repeatable), e.g. \
                 $(b,-e 'at 2ms link-down san'). Appended after $(i,PLAN).")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
           ~doc:"Simulation seed: same seed and plan replay identically.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Also write a Chrome trace-event JSON of the run.")
  in
  let run plan_file exprs mbytes chunk seed out =
    let parse_part = function
      | `File f -> Padico_fault.Plan.parse_file f
      | `Inline e -> Padico_fault.Plan.parse e
    in
    let parts =
      (match plan_file with Some f -> [ `File f ] | None -> [])
      @ List.map (fun e -> `Inline e) exprs
    in
    let plan =
      List.fold_left
        (fun acc part ->
           match parse_part part with
           | Ok evs -> acc @ evs
           | Error msg ->
             prerr_endline ("fault plan: " ^ msg);
             exit 2)
        [] parts
    in
    if out <> None then begin
      Padico_obs.Metrics.reset ();
      Padico_obs.Trace.enable ()
    end;
    (* Two nodes sharing a Myrinet SAN ("san") and a fallback Fast-Ethernet
       LAN ("lan"): the topology every failover example in DESIGN.md uses. *)
    let grid = Padico.create ~seed () in
    let a = Padico.add_node grid "a" in
    let b = Padico.add_node grid "b" in
    ignore (Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san"
              [ a; b ]);
    ignore (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan"
              [ a; b ]);
    let inj = Padico_fault.Inject.apply (Padico.net grid) plan in
    Resilient.listen grid b ~port:9000 (fun vl ->
        ignore
          (Padico.spawn grid b ~name:"echo" (fun () ->
               let buf = Engine.Bytebuf.create 65_536 in
               let rec loop () =
                 match Vlink.Vl.await (Vlink.Vl.post_read vl buf) with
                 | Vlink.Vl.Done n ->
                   (match
                      Vlink.Vl.await
                        (Vlink.Vl.post_write vl (Engine.Bytebuf.sub buf 0 n))
                    with
                    | Vlink.Vl.Done _ -> loop ()
                    | _ -> ())
                 | _ -> ()
               in
               loop ())));
    let conn = Resilient.connect grid ~src:a ~dst:b ~port:9000 in
    let cvl = Resilient.vl conn in
    let total = mbytes * 1_000_000 in
    let received = ref 0 in
    let t_start = ref 0 and t_end = ref 0 in
    ignore
      (Padico.spawn grid a ~name:"client" (fun () ->
           (match Vlink.Vl.await_connected cvl with
            | Ok () -> ()
            | Error m -> failwith ("connect: " ^ m));
           t_start := Padico.now grid;
           let sent = ref 0 in
           while !sent < total do
             let n = min chunk (total - !sent) in
             ignore
               (Vlink.Vl.post_write cvl (Engine.Bytebuf.create n));
             sent := !sent + n
           done;
           let buf = Engine.Bytebuf.create chunk in
           let rec rd () =
             if !received < total then
               match Vlink.Vl.await (Vlink.Vl.post_read cvl buf) with
               | Vlink.Vl.Done n ->
                 received := !received + n;
                 rd ()
               | Vlink.Vl.Eof | Vlink.Vl.Again -> ()
               | Vlink.Vl.Error m -> failwith ("read: " ^ m)
           in
           rd ();
           t_end := Padico.now grid));
    Padico.run grid;
    let st = Resilient.stats conn in
    if !received < total then
      Printf.printf "TRANSFER INCOMPLETE: %d / %d bytes echoed\n" !received
        total
    else begin
      let dt = !t_end - !t_start in
      Printf.printf "echoed     : %d MB round-trip in %.3f ms virtual\n"
        mbytes (float_of_int dt /. 1e6);
      Printf.printf "goodput    : %.2f MB/s\n"
        (float_of_int (2 * total) /. (float_of_int dt /. 1e9) /. 1e6)
    end;
    Printf.printf "faults     : %d injected (%d still pending)\n"
      (Padico_fault.Inject.fired inj) (Padico_fault.Inject.pending inj);
    Printf.printf "driver     : %s\n" st.Resilient.driver;
    Printf.printf "switches   : %d\n" st.Resilient.switches;
    Printf.printf "retries    : %d\n" st.Resilient.retries;
    Printf.printf "downtime   : %.3f ms virtual\n"
      (float_of_int st.Resilient.downtime_ns /. 1e6);
    match out with
    | None -> ()
    | Some file ->
      Padico_obs.Trace.disable ();
      Padico_obs.Export_chrome.write_file file;
      Printf.printf "trace      : %d records -> %s\n"
        (Padico_obs.Trace.length ()) file
  in
  Cmd.v
    (Cmd.info "fault"
       ~doc:"Replay a fault plan against a resilient transfer on a SAN+LAN \
             pair; print failover statistics (switches, retries, downtime).")
    Term.(const run $ plan_arg $ expr_arg $ mbytes_arg $ chunk_arg $ seed_arg
          $ out_arg)


(* ---------- check ---------- *)

let check_cmd =
  let seeds_arg =
    Arg.(value & opt int 10
         & info [ "seeds" ] ~docv:"N"
           ~doc:"Random schedule permutations per case, on top of the \
                 fifo/lifo/starve policies (seeds 0..N-1).")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"TOKEN"
           ~doc:"Replay one failing run from its $(b,PCHK:v1:...) token \
                 instead of exploring.")
  in
  let plan_arg =
    Arg.(value & opt (some file) None
         & info [ "plan" ] ~docv:"FILE"
           ~doc:"Fault plan applied to every case's grid (and digested \
                 into failure tokens).")
  in
  let case_arg =
    Arg.(value & opt_all string []
         & info [ "case" ] ~docv:"NAME"
           ~doc:"Restrict to a case (repeatable): exact name \
                 ($(b,madio/no-loss)) or fixture prefix ($(b,madio/)).")
  in
  let demo_arg =
    Arg.(value & flag
         & info [ "demo-bug" ]
           ~doc:"Also run $(b,demo/ordering), a deliberately planted \
                 register-after-dispatch bug that FIFO masks — \
                 demonstrates what exploration catches.")
  in
  let shrink_arg =
    Arg.(value & flag
         & info [ "shrink" ]
           ~doc:"Greedily minimise each failure's fault plan and policy \
                 before reporting.")
  in
  let chaos_arg =
    Arg.(value & opt int 0
         & info [ "chaos" ] ~docv:"N"
           ~doc:"Chaos sweep: run the $(b,coll-chaos/) cases once per \
                 generated fault plan (seeds 0..N-1; crashes, outages, \
                 loss bursts, partitions), each under every schedule \
                 policy. Failures dump a replayable \
                 $(b,chaos-seed-K.plan) next to the token.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"With $(b,--replay): write a Chrome trace-event JSON of \
                 the replayed run.")
  in
  let pp_policy p = Engine.Sim.policy_to_string p in
  let load_plan = function
    | None -> None
    | Some f -> (
        match Padico_fault.Plan.parse_file f with
        | Ok p -> Some p
        | Error msg ->
          prerr_endline ("fault plan: " ^ msg);
          exit 2)
  in
  let run seeds replay plan_file names demo shrink out chaos backend =
    let plan = load_plan plan_file in
    if chaos > 0 && backend = Padico.Sim then begin
      let policies = Padico_check.Explore.default_policies ~seeds in
      let names = if names = [] then None else Some names in
      let s =
        Padico_check.Explore.chaos ?names ~seeds:chaos ~policies ()
      in
      Printf.printf
        "chaos: %d generated plans (%d interleavings run)\n"
        s.Padico_check.Explore.plans_run
        s.Padico_check.Explore.chaos_interleavings;
      match s.Padico_check.Explore.chaos_failures with
      | [] ->
        print_endline "all chaos obligations hold under every schedule";
        exit 0
      | failures ->
        List.iter
          (fun cf ->
             let f = cf.Padico_check.Explore.failure in
             let plan_file =
               Printf.sprintf "chaos-seed-%d.plan"
                 cf.Padico_check.Explore.seed
             in
             let oc = open_out plan_file in
             let fmt = Format.formatter_of_out_channel oc in
             Padico_fault.Plan.pp fmt cf.Padico_check.Explore.plan;
             Format.pp_print_flush fmt ();
             close_out oc;
             Printf.printf
               "FAIL %s [%s] (chaos seed %d)\n  %s\n  replay: padico_cli \
                check --replay '%s' --plan %s\n"
               f.Padico_check.Explore.case
               (pp_policy f.Padico_check.Explore.policy)
               cf.Padico_check.Explore.seed f.Padico_check.Explore.message
               f.Padico_check.Explore.token plan_file)
          failures;
        exit 1
    end;
    if backend = Padico.Host then begin
      (* Real sockets: the OS supplies the schedule, so exploration's
         policies and replay tokens do not apply — run the host subset
         once, sequentially. *)
      let cases = Padico_check.Conform.host_cases () in
      let cases =
        match names with
        | [] -> cases
        | names ->
          List.filter
            (fun c ->
               List.exists
                 (fun n ->
                    n = c.Padico_check.Conform.case_name
                    || (String.length n > 0
                        && n.[String.length n - 1] = '/'
                        && String.length c.Padico_check.Conform.case_name
                           >= String.length n
                        && String.sub c.Padico_check.Conform.case_name 0
                             (String.length n)
                           = n))
                 names)
            cases
      in
      let failures = ref 0 in
      List.iter
        (fun c ->
           match c.Padico_check.Conform.run ~plan Engine.Sim.Fifo with
           | () -> Printf.printf "PASS %s\n" c.Padico_check.Conform.case_name
           | exception Padico_check.Conform.Failed m ->
             incr failures;
             Printf.printf "FAIL %s\n  %s\n" c.Padico_check.Conform.case_name
               m)
        cases;
      Printf.printf "host conformance: %d cases, %d failures\n"
        (List.length cases) !failures;
      exit (if !failures > 0 then 1 else 0)
    end;
    match replay with
    | Some token ->
      if out <> None then begin
        Padico_obs.Metrics.reset ();
        Padico_obs.Trace.enable ()
      end;
      let outcome = Padico_check.Explore.replay ?plan token in
      (match out with
       | None -> ()
       | Some file ->
         Padico_obs.Trace.disable ();
         Padico_obs.Export_chrome.write_file file;
         Printf.printf "trace: %d records -> %s\n"
           (Padico_obs.Trace.length ()) file);
      (match outcome with
       | Error msg ->
         prerr_endline msg;
         exit 2
       | Ok None ->
         Printf.printf "PASS %s (failure did not reproduce)\n" token;
         exit 1
       | Ok (Some f) ->
         Printf.printf "FAIL %s\n  %s\n" f.Padico_check.Explore.token
           f.Padico_check.Explore.message)
    | None ->
      let policies = Padico_check.Explore.default_policies ~seeds in
      let names = if names = [] then None else Some names in
      let summary =
        Padico_check.Explore.explore ?plan ~demo ?names ~policies ()
      in
      Printf.printf
        "conformance: %d cases x %d policies (%d interleavings run)\n"
        summary.Padico_check.Explore.cases_run (List.length policies)
        summary.Padico_check.Explore.interleavings;
      (match summary.Padico_check.Explore.failures with
       | [] -> print_endline "all obligations hold under every schedule"
       | failures ->
         List.iter
           (fun f ->
              let f =
                if not shrink then f
                else begin
                  let plan', policy', token' =
                    Padico_check.Explore.shrink ?plan f
                  in
                  Printf.printf
                    "shrunk %s: %d plan events, policy %s\n"
                    f.Padico_check.Explore.case
                    (match plan' with
                     | None -> 0
                     | Some p -> List.length p)
                    (pp_policy policy');
                  { f with Padico_check.Explore.token = token';
                    policy = policy' }
                end
              in
              Printf.printf "FAIL %s [%s]\n  %s\n  replay: padico_cli \
                             check --replay '%s'%s\n"
                f.Padico_check.Explore.case
                (pp_policy f.Padico_check.Explore.policy)
                f.Padico_check.Explore.message
                f.Padico_check.Explore.token
                (* The shrinker may have stripped the plan entirely: only
                   point at the plan file while the token still digests
                   one, or the replay's digest guard would reject it. *)
                (match plan_file with
                 | Some file
                   when not
                          (String.length f.Padico_check.Explore.token >= 2
                           && String.sub f.Padico_check.Explore.token
                                (String.length f.Padico_check.Explore.token
                                 - 2)
                                2
                              = ":-") ->
                   " --plan " ^ file
                 | Some _ | None -> ""))
           failures;
         exit 1)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Run the adapter conformance kit under schedule exploration: \
             every VLink/Circuit obligation against every adapter, under \
             fifo/lifo/starve plus N seeded random same-timestamp \
             permutations. Failures print a replay token.")
    Term.(const run $ seeds_arg $ replay_arg $ plan_arg $ case_arg
          $ demo_arg $ shrink_arg $ out_arg $ chaos_arg $ backend_arg)

(* ---------- flow ---------- *)

let flow_cmd =
  let mismatch_arg =
    Arg.(value & opt int 100
         & info [ "mismatch" ] ~docv:"N"
           ~doc:"Producer/consumer rate mismatch: the consumer drains N \
                 times slower than the SAN can deliver.")
  in
  let window_arg =
    Arg.(value & opt int 131072
         & info [ "credit-window" ] ~docv:"BYTES"
           ~doc:"MadIO per-flow credit window; 0 disables credits.")
  in
  let rx_high_arg =
    Arg.(value & opt int 1048576
         & info [ "rx-high" ] ~docv:"BYTES"
           ~doc:"Resilient receive-queue high watermark.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Seed.")
  in
  let budget_arg =
    Arg.(value & flag
         & info [ "budget" ]
           ~doc:"Print the per-connection byte-budget report after the run: \
                 live connections, resident buffer bytes and reaped \
                 connections per node (the conn.count and \
                 conn.bytes_resident gauges).")
  in
  let run mbytes chunk mismatch window rx_high seed budget =
    Padico_obs.Metrics.reset ();
    Padico_obs.Trace.enable ();
    let grid = Padico.create ~seed () in
    let a = Padico.add_node grid "a" in
    let b = Padico.add_node grid "b" in
    let san =
      Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san" [ a; b ]
    in
    ignore (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan"
              [ a; b ]);
    if window > 0 then begin
      Netaccess.Madio.set_credit_window (Padico.madio grid a san) window;
      Netaccess.Madio.set_credit_window (Padico.madio grid b san) window
    end;
    let config =
      { Resilient.default_config with
        Resilient.rx_high; rx_low = rx_high / 4 }
    in
    let total = mbytes * 1_000_000 in
    (* Consumer pace: chunk bytes per wakeup, [mismatch] times slower than
       Myrinet-2000's ~250 MB/s. *)
    let delay_ns =
      int_of_float (float_of_int (chunk * mismatch) /. 250e6 *. 1e9)
    in
    Resilient.listen ~config grid b ~port:9100 (fun vl ->
        ignore
          (Padico.spawn grid b ~name:"producer" (fun () ->
               let sent = ref 0 in
               while !sent < total do
                 let n = min chunk (total - !sent) in
                 match
                   Personalities.Vio.try_write vl (Engine.Bytebuf.create n)
                 with
                 | `Ok k -> sent := !sent + k
                 | `Again -> Personalities.Vio.wait_writable vl
               done)));
    let conn = Resilient.connect ~config grid ~src:a ~dst:b ~port:9100 in
    let cvl = Resilient.vl conn in
    let t0 = ref 0 and t1 = ref 0 in
    ignore
      (Padico.spawn grid a ~name:"consumer" (fun () ->
           (match Vlink.Vl.await_connected cvl with
            | Ok () -> ()
            | Error m -> failwith ("connect: " ^ m));
           t0 := Padico.now grid;
           let buf = Engine.Bytebuf.create chunk in
           let received = ref 0 in
           while !received < total do
             (match Vlink.Vl.await (Vlink.Vl.post_read cvl buf) with
              | Vlink.Vl.Done n -> received := !received + n
              | Vlink.Vl.Eof | Vlink.Vl.Again -> failwith "premature eof"
              | Vlink.Vl.Error m -> failwith ("read: " ^ m));
             if !received < total then
               Engine.Proc.sleep (Simnet.Node.sim a) delay_ns
           done;
           t1 := Padico.now grid));
    Padico.run grid;
    Padico_obs.Trace.disable ();
    let st = Resilient.stats conn in
    let dt = !t1 - !t0 in
    Printf.printf "transferred  : %d MB in %.3f ms virtual (%.2f MB/s)\n"
      mbytes (float_of_int dt /. 1e6)
      (float_of_int total /. (float_of_int dt /. 1e9) /. 1e6);
    Printf.printf "rx peak      : %d bytes (high watermark %d)\n"
      st.Resilient.rx_peak rx_high;
    Printf.printf "tx peak      : %d bytes (window %d)\n" st.Resilient.tx_peak
      config.Resilient.tx_window;
    let mio_b = Padico.madio grid b san in
    Printf.printf "credit       : window %d, stalls %d, credit-only msgs %d\n"
      (Netaccess.Madio.credit_window mio_b)
      (Netaccess.Madio.credit_stalls mio_b)
      (Netaccess.Madio.credit_messages mio_b);
    List.iter
      (fun (node, name) ->
         let core = Netaccess.Na_core.get node in
         List.iter
           (fun kind ->
              let kname =
                match kind with
                | Netaccess.Na_core.Madio_work -> "madio"
                | Netaccess.Na_core.Sysio_work -> "sysio"
              in
              Printf.printf
                "dispatch %s/%-5s: depth peak %d, deferred %d, shed %d\n"
                name kname
                (Netaccess.Na_core.queue_peak core kind)
                (Netaccess.Na_core.deferred_count core kind)
                (Netaccess.Na_core.shed_count core kind))
           [ Netaccess.Na_core.Madio_work; Netaccess.Na_core.Sysio_work ])
      [ (a, "a"); (b, "b") ];
    (* Per-place flow.* event counts out of the trace ring. *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun r ->
         match r.Padico_obs.Trace.ev with
         | Padico_obs.Event.Flow { action; place; _ } ->
           let key = (r.Padico_obs.Trace.node, place, action) in
           Hashtbl.replace tbl key
             (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
         | _ -> ())
      (Padico_obs.Trace.records ());
    let rows =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort compare
    in
    if rows = [] then print_endline "no flow.* events (no backpressure hit)"
    else begin
      print_endline "backpressure events:";
      List.iter
        (fun ((node, place, action), n) ->
           Printf.printf "  %-4s %-16s %-14s %6d\n" node place action n)
        rows
    end;
    if budget then begin
      print_endline "per-connection byte budget:";
      Printf.printf "  idle-connection floor: %d bytes (conn overhead)\n"
        Drivers.Tcp.conn_overhead_bytes;
      List.iter
        (fun (node, name) ->
           let sio = Netaccess.Sysio.get node in
           let conns = Netaccess.Sysio.conn_count sio in
           let resident = Netaccess.Sysio.bytes_resident sio in
           let per_conn =
             if conns = 0 then 0.0
             else float_of_int resident /. float_of_int conns
           in
           Printf.printf
             "  %-4s conns %4d  resident %8d B  (%.0f B/conn)  reaped %d\n"
             name conns resident per_conn
             (Netaccess.Sysio.conns_reaped sio))
        [ (a, "a"); (b, "b") ]
    end
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:"Run a fast-producer/slow-consumer transfer on a SAN+LAN pair \
             with credit flow control and watermarks; print per-link \
             backpressure statistics (queue peaks, credits, flow events).")
    Term.(const run $ mbytes_arg $ chunk_arg $ mismatch_arg $ window_arg
          $ rx_high_arg $ seed_arg $ budget_arg)

(* ---------- sched ---------- *)

let sched_cmd =
  let policy_arg =
    Arg.(value
         & opt (enum [ ("static", `Static); ("adaptive", `Adaptive);
                       ("adaptive-eager", `Eager) ])
             `Adaptive
         & info [ "policy" ] ~docv:"POLICY"
           ~doc:"NetAccess dispatcher policy: $(b,static) (fixed quanta), \
                 $(b,adaptive) (EWMA quanta + idle-scan backoff) or \
                 $(b,adaptive-eager) (EWMA quanta, no backoff).")
  in
  let iters_arg =
    Arg.(value & opt int 300
         & info [ "iters" ] ~docv:"N" ~doc:"MadIO ping-pong round trips.")
  in
  let burst_arg =
    Arg.(value & opt int 2000
         & info [ "burst" ] ~docv:"N"
           ~doc:"Small messages (64 B) in the one-way burst phase.")
  in
  let no_agg_arg =
    Arg.(value & flag
         & info [ "no-agg" ]
           ~doc:"Disable small-message aggregation for the burst.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Seed.")
  in
  let run policy iters burst no_agg seed =
    let pol, pol_name =
      match policy with
      | `Static -> (Netaccess.Na_core.default_policy, "static")
      | `Adaptive ->
        (Netaccess.Na_core.(Adaptive default_adaptive), "adaptive")
      | `Eager ->
        (Netaccess.Na_core.(
           Adaptive { default_adaptive with idle_backoff = false }),
         "adaptive-eager")
    in
    Engine.Bytebuf.Pool.reset ();
    let grid = Padico.create ~seed () in
    let a = Padico.add_node grid "a" in
    let b = Padico.add_node grid "b" in
    let san =
      Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san" [ a; b ]
    in
    let lan =
      Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]
    in
    Netaccess.Na_core.set_policy (Netaccess.Na_core.get a) pol;
    Netaccess.Na_core.set_policy (Netaccess.Na_core.get b) pol;
    (* One watched-but-silent LAN socket: the adaptive scheduler's
       idle-scan accounting needs registered SysIO interest to model. *)
    let sa = Netaccess.Sysio.get a and sb = Netaccess.Sysio.get b in
    let stack_a = Netaccess.Sysio.stack_on sa lan in
    let stack_b = Netaccess.Sysio.stack_on sb lan in
    Netaccess.Sysio.listen sb stack_b ~port:80 (fun conn ->
        Netaccess.Sysio.watch sb conn (fun _ -> ()));
    ignore
      (Netaccess.Sysio.connect sa stack_a ~dst:(Simnet.Node.id b) ~port:80
         (fun _ _ -> ()));
    let ma = Padico.madio grid a san and mb = Padico.madio grid b san in
    if not no_agg then begin
      Netaccess.Madio.set_aggregation ma true;
      Netaccess.Madio.set_aggregation mb true
    end;
    let msg n seed =
      let m = Engine.Bytebuf.create n in
      Engine.Bytebuf.fill_pattern m ~seed;
      m
    in
    (* Latency phase: ping-pong on lchannel 1 (explicitly flushed, the
       latency-critical pattern). *)
    let la = Netaccess.Madio.open_lchannel ma ~id:1 in
    let lb = Netaccess.Madio.open_lchannel mb ~id:1 in
    let rounds = ref 0 and t_pp = ref 0 in
    Netaccess.Madio.set_recv lb (fun ~src buf ->
        Netaccess.Madio.send lb ~dst:src buf;
        Netaccess.Madio.flush lb ~dst:src);
    Netaccess.Madio.set_recv la (fun ~src:_ _ ->
        incr rounds;
        if !rounds < iters then begin
          Netaccess.Madio.send la ~dst:(Simnet.Node.id b) (msg 64 !rounds);
          Netaccess.Madio.flush la ~dst:(Simnet.Node.id b)
        end
        else t_pp := Padico.now grid);
    Netaccess.Madio.send la ~dst:(Simnet.Node.id b) (msg 64 0);
    Netaccess.Madio.flush la ~dst:(Simnet.Node.id b);
    (* Throughput phase: one-way 64 B burst on lchannel 2 (batchable). *)
    let l2a = Netaccess.Madio.open_lchannel ma ~id:2 in
    let l2b = Netaccess.Madio.open_lchannel mb ~id:2 in
    let got = ref 0 and t0 = ref 0 and t1 = ref 0 in
    Netaccess.Madio.set_recv l2b (fun ~src:_ _ ->
        incr got;
        if !got = burst then t1 := Padico.now grid);
    ignore
      (Padico.spawn grid a ~name:"burst-src" (fun () ->
           t0 := Padico.now grid;
           for i = 1 to burst do
             Netaccess.Madio.send l2a ~dst:(Simnet.Node.id b) (msg 64 i)
           done));
    Padico.run grid;
    Printf.printf "policy       : %s\n" pol_name;
    Printf.printf "ping-pong    : %d round trips, %.1f us mean round trip\n"
      !rounds
      (float_of_int !t_pp /. float_of_int (max !rounds 1) /. 1e3);
    Printf.printf "burst        : %d x 64 B in %.3f ms virtual (%.2f Mmsg/s)\n"
      !got
      (float_of_int (!t1 - !t0) /. 1e6)
      (float_of_int !got /. (float_of_int (max (!t1 - !t0) 1) *. 1e-9) /. 1e6);
    List.iter
      (fun (node, name) ->
         let core = Netaccess.Na_core.get node in
         List.iter
           (fun (kind, kname) ->
              Printf.printf
                "dispatch %s/%-5s: %6d dispatched, depth peak %3d, \
                 work-EWMA %5.2f, quantum %2d\n"
                name kname
                (Netaccess.Na_core.dispatched core kind)
                (Netaccess.Na_core.queue_peak core kind)
                (Netaccess.Na_core.work_ewma core kind)
                (Netaccess.Na_core.current_quantum core kind))
           [ (Netaccess.Na_core.Madio_work, "madio");
             (Netaccess.Na_core.Sysio_work, "sysio") ];
         Printf.printf
           "polling  %s      : busy %d, idle (charged) %d, saved %d, \
            scan gap %d\n"
           name
           (Netaccess.Na_core.polls_busy core)
           (Netaccess.Na_core.polls_idle core)
           (Netaccess.Na_core.polls_saved core)
           (Netaccess.Na_core.scan_gap core))
      [ (a, "a"); (b, "b") ];
    Printf.printf
      "aggregation  : %s — %d messages batched, %d batches, %d packets saved\n"
      (if Netaccess.Madio.aggregation_enabled ma then "on" else "off")
      (Netaccess.Madio.messages_batched ma)
      (Netaccess.Madio.batches_sent ma)
      (Netaccess.Madio.packets_saved ma);
    Printf.printf "header pool  : %d hits, %d misses\n"
      (Engine.Bytebuf.Pool.pool_hits ())
      (Engine.Bytebuf.Pool.pool_misses ())
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:"Run a latency ping-pong plus a small-message burst on a \
             SAN+LAN pair under a chosen dispatcher policy; print \
             per-subsystem dispatch/poll statistics and aggregation \
             counters.")
    Term.(const run $ policy_arg $ iters_arg $ burst_arg $ no_agg_arg
          $ seed_arg)

(* ---------- collect ---------- *)

let collect_cmd =
  let clusters_arg =
    Arg.(value & opt int 4
         & info [ "clusters" ] ~docv:"N" ~doc:"SAN islands in the grid.")
  in
  let nodes_arg =
    Arg.(value & opt int 8
         & info [ "nodes" ] ~docv:"N" ~doc:"Nodes per island.")
  in
  let size_arg =
    Arg.(value & opt int 4096
         & info [ "size" ] ~docv:"BYTES"
           ~doc:"Payload bytes (per rank for gather/scatter).")
  in
  let op_arg =
    Arg.(value
         & opt (enum [ ("all", `All); ("barrier", `Barrier);
                       ("bcast", `Bcast); ("reduce", `Reduce);
                       ("allreduce", `Allreduce); ("gather", `Gather);
                       ("scatter", `Scatter) ])
             `All
         & info [ "op" ] ~docv:"OP" ~doc:"Collective to run (default all).")
  in
  let strategy_arg =
    Arg.(value
         & opt (enum [ ("both", `Both); ("flat", `Flat);
                       ("multilevel", `Multilevel) ])
             `Both
         & info [ "strategy" ] ~docv:"S"
           ~doc:"$(b,flat) (rank-0 star), $(b,multilevel) (topology-aware \
                 trees) or $(b,both).")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Seed.")
  in
  let run clusters nodes size op strat seed =
    let module Group = Collectives.Group in
    let module Gridgen = Scenario.Gridgen in
    let module Bb = Engine.Bytebuf in
    let ops =
      List.filter
        (fun (name, _) ->
           match op with
           | `All -> true
           | `Barrier -> name = "barrier"
           | `Bcast -> name = "bcast"
           | `Reduce -> name = "reduce"
           | `Allreduce -> name = "allreduce"
           | `Gather -> name = "gather"
           | `Scatter -> name = "scatter")
        [ ("barrier", `B); ("bcast", `Bc); ("reduce", `R);
          ("allreduce", `A); ("gather", `G); ("scatter", `S) ]
    in
    let strategies =
      match strat with
      | `Both -> [ (Group.Flat, "flat"); (Group.Multilevel, "multilevel") ]
      | `Flat -> [ (Group.Flat, "flat") ]
      | `Multilevel -> [ (Group.Multilevel, "multilevel") ]
    in
    let pattern n s =
      let b = Bb.create n in
      Bb.fill_pattern b ~seed:s;
      b
    in
    List.iter
      (fun (strategy, sname) ->
         let g = Gridgen.generate ~seed ~clusters ~nodes_per_cluster:nodes () in
         let members = Array.of_list g.Gridgen.nodes in
         let n = Array.length members in
         let groups =
           Group.create ~strategy g.Gridgen.grid ~name:("cli-" ^ sname)
             g.Gridgen.nodes
         in
         let db = Group.netdb groups.(0) in
         Printf.printf
           "\n%s: %d ranks, %d clusters (%s intra, wan across)\n" sname n
           (Selector.Netdb.cluster_count db)
           (Selector.Netdb.level_name (Selector.Netdb.cluster_level db 0));
         Printf.printf "%-10s %9s %12s %12s\n" "op" "wan msgs" "wan bytes"
           "time (us)";
         Padico_obs.Trace.enable ();
         List.iter
           (fun (op_name, tag) ->
              let m0 = Group.wan_messages groups.(0) in
              let b0 = Group.wan_bytes groups.(0) in
              let t0 = Padico.now g.Gridgen.grid in
              (* Completion = the last rank finishing, not simulator
                 quiescence (stale transport timers run long past the op). *)
              let t1 = ref t0 in
              Array.iteri
                (fun r node ->
                   ignore
                     (Padico.spawn g.Gridgen.grid node
                        ~name:(op_name ^ "-" ^ string_of_int r)
                        (fun () ->
                           let gm = groups.(r) in
                           (match tag with
                           | `B -> Group.barrier gm
                           | `Bc ->
                             ignore
                               (Group.bcast gm ~root:0
                                  (if r = 0 then pattern size 7
                                   else Bb.create 0))
                           | `R ->
                             ignore
                               (Group.reduce gm ~root:0 ~op:Group.Sum
                                  (pattern size (r + 1)))
                           | `A ->
                             ignore
                               (Group.allreduce gm ~op:Group.Bxor
                                  (pattern size (r + 1)))
                           | `G ->
                             ignore (Group.gather gm ~root:0
                                       (pattern size (r + 1)))
                           | `S ->
                             ignore
                               (Group.scatter gm ~root:0
                                  (if r = 0 then
                                     Array.init n (fun i ->
                                         pattern size (i + 1))
                                   else [||])));
                           t1 := max !t1 (Padico.now g.Gridgen.grid))))
                members;
              Padico.run g.Gridgen.grid;
              Printf.printf "%-10s %9d %12d %12.1f\n" op_name
                (Group.wan_messages groups.(0) - m0)
                (Group.wan_bytes groups.(0) - b0)
                (float_of_int (!t1 - t0) /. 1e3))
           ops;
         Padico_obs.Trace.disable ();
         (* Stage spans out of the trace ring: mean queue-to-completion time
            of each (op, stage, level) across ranks. *)
         let tbl = Hashtbl.create 32 in
         List.iter
           (fun r ->
              match r.Padico_obs.Trace.ev with
              | Padico_obs.Event.Coll_stage { op; stage; level; _ }
                when r.Padico_obs.Trace.dur >= 0 ->
                let key = (op, stage, level) in
                let n, tot =
                  Option.value ~default:(0, 0) (Hashtbl.find_opt tbl key)
                in
                Hashtbl.replace tbl key (n + 1, tot + r.Padico_obs.Trace.dur)
              | _ -> ())
           (Padico_obs.Trace.records ());
         let rows =
           Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
           |> List.sort compare
         in
         if rows <> [] then begin
           Printf.printf "stage spans (mean per rank):\n";
           List.iter
             (fun ((op, stage, level), (cnt, tot)) ->
                Printf.printf "  %-10s %-5s %-5s %6d spans %10.1f us\n" op
                  stage level cnt
                  (float_of_int tot /. float_of_int cnt /. 1e3))
             rows
         end)
      strategies
  in
  Cmd.v
    (Cmd.info "collect"
       ~doc:"Run group collectives (barrier/bcast/reduce/allreduce/gather/\
             scatter) on a multi-cluster grid under the flat and \
             topology-aware multilevel strategies; print WAN crossings, \
             bytes and completion times, plus per-stage trace spans.")
    Term.(const run $ clusters_arg $ nodes_arg $ size_arg $ op_arg
          $ strategy_arg $ seed_arg)

(* ---------- detect ---------- *)

let detect_cmd =
  let clusters_arg =
    Arg.(value & opt int 2
         & info [ "clusters" ] ~docv:"N" ~doc:"SAN islands in the grid.")
  in
  let nodes_arg =
    Arg.(value & opt int 4
         & info [ "nodes" ] ~docv:"N" ~doc:"Nodes per island.")
  in
  let victim_arg =
    Arg.(value & opt int 3
         & info [ "victim" ] ~docv:"RANK"
           ~doc:"Rank whose node crashes (must not be 0: rank 0 roots the \
                 probe collectives).")
  in
  let crash_arg =
    Arg.(value & opt int 20
         & info [ "crash-at" ] ~docv:"MS"
           ~doc:"Crash time on the virtual clock, in milliseconds.")
  in
  let interval_arg =
    Arg.(value & opt int 1
         & info [ "interval" ] ~docv:"MS" ~doc:"Heartbeat interval.")
  in
  let run clusters nodes victim crash_ms interval_ms =
    let module Group = Collectives.Group in
    let module Gridgen = Scenario.Gridgen in
    let module Bb = Engine.Bytebuf in
    let module Time = Engine.Time in
    let module Proc = Engine.Proc in
    let module Node = Simnet.Node in
    let module Plan = Padico_fault.Plan in
    let n = clusters * nodes in
    if victim <= 0 || victim >= n then begin
      Printf.eprintf "victim rank must be in 1..%d\n" (n - 1);
      exit 2
    end;
    let g = Gridgen.generate ~clusters ~nodes_per_cluster:nodes () in
    let members = Array.of_list g.Gridgen.nodes in
    let heal =
      { Detect.default_config with
        Detect.interval_ns = Time.ms interval_ms }
    in
    let groups =
      Group.create ~deadline_ns:(Time.ms 400) ~heal g.Gridgen.grid
        ~name:"cli-detect" g.Gridgen.nodes
    in
    let crash_at = Time.ms crash_ms in
    let ops_at = crash_at + Time.ms 1 in
    Padico_obs.Trace.enable ~capacity:262_144 ();
    ignore
      (Padico_fault.Inject.apply
         (Padico.net g.Gridgen.grid)
         [ { Plan.at_ns = crash_at;
             action = Plan.Node_crash (Node.name members.(victim)) } ]);
    let payload = 1024 in
    let pat seed =
      let b = Bb.create payload in
      Bb.fill_pattern b ~seed;
      b
    in
    Array.iteri
      (fun r node ->
         ignore
           (Padico.spawn g.Gridgen.grid node
              ~name:(Printf.sprintf "detect-%d" r)
              (fun () ->
                 let gm = groups.(r) in
                 (try ignore (Group.allreduce gm ~op:Group.Bxor (pat (r + 1)))
                  with Group.Failed _ -> ());
                 if r <> victim then begin
                   let now = Padico.now g.Gridgen.grid in
                   if now < ops_at then
                     Proc.sleep_on (Node.clock node) (ops_at - now);
                   (* In flight across the eviction, then one epoch-1
                      steady-state round. *)
                   ignore (Group.allreduce gm ~op:Group.Bxor (pat (r + 1)));
                   ignore (Group.allreduce gm ~op:Group.Bxor (pat (r + 1)))
                 end)))
      members;
    Padico.run g.Gridgen.grid ~until:(crash_at + Time.ms 400);
    Array.iter Group.retire groups;
    Padico_obs.Trace.disable ();
    Printf.printf
      "detector timeline (%d ranks, victim %d crashes at %d ms):\n" n victim
      crash_ms;
    List.iter
      (fun r ->
         match r.Padico_obs.Trace.ev with
         | Padico_obs.Event.Detect { action; peer; phi_milli } ->
           Printf.printf "  %10.3f ms  %-10s %-14s peer %-4d phi %.2f\n"
             (float_of_int r.Padico_obs.Trace.ts /. 1e6)
             r.Padico_obs.Trace.node ("detect." ^ action) peer
             (float_of_int phi_milli /. 1e3)
         | Padico_obs.Event.Member { group = _; action; rank; epoch } ->
           Printf.printf "  %10.3f ms  %-10s %-14s rank %-4d epoch %d\n"
             (float_of_int r.Padico_obs.Trace.ts /. 1e6)
             r.Padico_obs.Trace.node ("member." ^ action) rank epoch
         | _ -> ())
      (Padico_obs.Trace.records ());
    let gm0 = groups.(0) in
    Printf.printf
      "\nrank 0 membership: epoch %d, %d/%d live, dead [%s], %d op \
       restart(s)\n"
      (Group.epoch gm0) (Group.live_count gm0) n
      (String.concat ";" (List.map string_of_int (Group.dead_ranks gm0)))
      (Group.restarts gm0);
    (match Group.detector gm0 with
     | Some det ->
       let s = Detect.stats det in
       Printf.printf
         "rank 0 detector:   %d hb sent, %d suspect(s), %d refute(s), %d \
          confirm(s), %d peer(s) monitored\n"
         s.Detect.hb_sent s.Detect.suspects s.Detect.refutes
         s.Detect.confirms s.Detect.monitored
     | None -> ());
    Array.iteri
      (fun r gm ->
         if r <> victim && Group.poisoned gm <> None then begin
           Printf.eprintf "rank %d poisoned: %s\n" r
             (Option.value (Group.poisoned gm) ~default:"");
           exit 1
         end)
      groups
  in
  Cmd.v
    (Cmd.info "detect"
       ~doc:"Crash a member of a self-healing group and watch the failure \
             detector work: the suspicion/confirmation timeline \
             (detect.* / member.* trace events), the eviction epoch, and \
             the detector's counters.")
    Term.(const run $ clusters_arg $ nodes_arg $ victim_arg $ crash_arg
          $ interval_arg)

(* ---------- hostio ---------- *)

let hostio_cmd =
  let timers_arg =
    Arg.(value & opt int 100
         & info [ "timers" ] ~docv:"N"
           ~doc:"Timers to arm (staggered sub-millisecond deadlines).")
  in
  let kbytes_arg =
    Arg.(value & opt int 256
         & info [ "kbytes" ] ~docv:"KB"
           ~doc:"Payload echoed over a socketpair through the reactor.")
  in
  let run timers kbytes =
    let module Loop = Hostio.Loop in
    let module Stream = Hostio.Stream in
    let module Bb = Engine.Bytebuf in
    let loop = Loop.create () in
    (* Timer workload: N staggered deadlines, every 10th cancelled. *)
    let fired = ref 0 in
    for i = 1 to timers do
      let tm =
        Engine.Clock.arm (Loop.clock loop)
          (i * 5_000) (fun () -> incr fired)
      in
      if i mod 10 = 0 then Engine.Clock.cancel tm
    done;
    (* Socketpair echo: stream [kbytes] through the reactor and back. *)
    let a, b = Stream.pair loop in
    let total = kbytes * 1024 in
    let chunk = Bb.create 8_192 in
    Bb.fill_pattern chunk ~seed:11;
    let sent = ref 0 and echoed = ref 0 and received = ref 0 in
    let rec feed () =
      if !sent < total then begin
        let n = Stream.write a (Bb.sub chunk 0 (min 8_192 (total - !sent))) in
        sent := !sent + n;
        if n > 0 then feed ()
      end
    in
    Stream.set_event_cb b (function
      | Stream.Readable ->
        let rec drain () =
          match Stream.read b ~max:8_192 with
          | Some buf ->
            echoed := !echoed + Bb.length buf;
            ignore (Stream.write b buf);
            drain ()
          | None -> ()
        in
        drain ()
      | Stream.Peer_closed -> Stream.close b
      | _ -> ());
    Stream.set_event_cb a (function
      | Stream.Readable ->
        let rec drain () =
          match Stream.read a ~max:8_192 with
          | Some buf ->
            received := !received + Bb.length buf;
            if !received >= total then Stream.close a else drain ()
          | None -> ()
        in
        drain ()
      | Stream.Writable -> feed ()
      | _ -> ());
    feed ();
    let t0 = Loop.now_ns loop in
    Loop.run loop;
    let dt = Loop.now_ns loop - t0 in
    Printf.printf "hostio reactor: %d iterations in %.2f ms\n"
      (Loop.iterations loop) (float_of_int dt /. 1e6);
    Printf.printf "  timers     : %d armed, %d fired, %d cancelled, %d live\n"
      timers !fired (timers / 10) (Loop.live_timers loop);
    Printf.printf "  fd events  : %d delivered on %d watched fds (%d active)\n"
      (Loop.fd_events loop) (Loop.watched_fds loop) (Loop.active_fds loop);
    Printf.printf "  echo       : %d KB sent, %d KB echoed back (%.1f MB/s \
                   round-trip)\n"
      (!sent / 1024) (!received / 1024)
      (if dt > 0 then
         Engine.Stats.bandwidth_mb_s ~bytes_transferred:(2 * !received)
           ~elapsed_ns:dt
       else 0.)
  in
  Cmd.v
    (Cmd.info "hostio"
       ~doc:"Exercise the real-OS reactor (timers + socketpair echo) and \
             report loop, fd and timer statistics.")
    Term.(const run $ timers_arg $ kbytes_arg)

let () =
  let doc = "PadicoTM-style grid communication framework (simulated)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "padico_cli" ~doc)
          [ registry_cmd; selector_cmd; ping_cmd; bandwidth_cmd; trace_cmd;
            fault_cmd; flow_cmd; check_cmd; sched_cmd; collect_cmd;
            detect_cmd; hostio_cmd ]))
