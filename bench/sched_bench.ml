(* Experiment E12 — scheduling & aggregation:

   (a) small-message throughput, aggregation off vs on (the headline:
       >= 2x messages/s for 64 B bursts at equal goodput);
   (b) the latency/throughput Pareto front as the coalescing budget
       sweeps from 0 (off) to 50 us — burst rate and the worst-case
       latency a lone message pays waiting out the budget;
   (c) adaptive arbitration: a MadIO-only workload next to one
       watched-but-silent SysIO socket — charged idle polls under the
       eager adaptive scheduler vs exponential backoff (>= 5x fewer),
       with the static policy as the no-model baseline. *)

module Bb = Engine.Bytebuf
module Madio = Netaccess.Madio
module Na = Netaccess.Na_core
module Sysio = Netaccess.Sysio

let pattern ~seed n =
  let b = Bb.create n in
  Bb.fill_pattern b ~seed;
  b

let madio_grid () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  let seg = Padico.add_segment grid Simnet.Presets.myrinet2000 [ a; b ] in
  (grid, a, b, seg)

let msg_size = 64

let burst_count = 2_000

(* One-way burst: virtual ns from first send to last delivery, payload
   checksum (goodput witness), Madeleine packets saved by coalescing. *)
let burst ?budget_ns ~agg () =
  let grid, a, b, seg = madio_grid () in
  let ma = Padico.madio grid a seg and mb = Padico.madio grid b seg in
  if agg then begin
    Madio.set_aggregation ma ?budget_ns true;
    Madio.set_aggregation mb true
  end;
  let la = Madio.open_lchannel ma ~id:1 in
  let lb = Madio.open_lchannel mb ~id:1 in
  let got = ref 0 and sum = ref 0 in
  let t0 = ref 0 and t1 = ref 0 in
  Madio.set_recv lb (fun ~src:_ buf ->
      incr got;
      sum := !sum + Bb.checksum buf;
      if !got = burst_count then t1 := Padico.now grid);
  ignore
    (Padico.spawn grid a ~name:"burst-src" (fun () ->
         t0 := Padico.now grid;
         for i = 1 to burst_count do
           Madio.send la ~dst:(Simnet.Node.id b) (pattern ~seed:i msg_size)
         done));
  Bhelp.run grid;
  if !got < burst_count then failwith "e12: burst incomplete";
  (!t1 - !t0, !sum, Madio.packets_saved ma)

let rate_msg_s ns = float_of_int burst_count /. (float_of_int ns *. 1e-9)

(* Worst-case small-message latency under a coalescing budget: a lone
   message with no batch-mates waits out the whole budget. *)
let lone_latency ?budget_ns ~agg () =
  let grid, a, b, seg = madio_grid () in
  let ma = Padico.madio grid a seg and mb = Padico.madio grid b seg in
  if agg then begin
    Madio.set_aggregation ma ?budget_ns true;
    Madio.set_aggregation mb true
  end;
  let la = Madio.open_lchannel ma ~id:1 in
  let lb = Madio.open_lchannel mb ~id:1 in
  let t0 = ref 0 and t1 = ref (-1) in
  Madio.set_recv lb (fun ~src:_ _ -> t1 := Padico.now grid);
  ignore
    (Padico.spawn grid a ~name:"lone-src" (fun () ->
         t0 := Padico.now grid;
         Madio.send la ~dst:(Simnet.Node.id b) (pattern ~seed:1 msg_size)));
  Bhelp.run grid;
  if !t1 < 0 then failwith "e12: lone message lost";
  !t1 - !t0

(* Part (c): 300 MadIO ping-pongs on the SAN while one idle TCP
   connection sits watched on the LAN. Returns the sender node's charged
   idle SysIO polls and the ping-pong completion time. *)
let pingpong_iters = 300

let polling policy =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  let san =
    Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san" [ a; b ]
  in
  let lan =
    Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]
  in
  Na.set_policy (Na.get a) policy;
  Na.set_policy (Na.get b) policy;
  let sa = Sysio.get a and sb = Sysio.get b in
  let stack_a = Sysio.stack_on sa lan and stack_b = Sysio.stack_on sb lan in
  Sysio.listen sb stack_b ~port:80 (fun conn ->
      Sysio.watch sb conn (fun _ -> ()));
  ignore
    (Sysio.connect sa stack_a ~dst:(Simnet.Node.id b) ~port:80 (fun _ _ -> ()));
  let ma = Padico.madio grid a san and mb = Padico.madio grid b san in
  let la = Madio.open_lchannel ma ~id:1 in
  let lb = Madio.open_lchannel mb ~id:1 in
  let rounds = ref 0 in
  let t1 = ref 0 in
  Madio.set_recv lb (fun ~src buf -> Madio.send lb ~dst:src buf);
  Madio.set_recv la (fun ~src:_ _ ->
      incr rounds;
      if !rounds < pingpong_iters then
        Madio.send la ~dst:(Simnet.Node.id b)
          (pattern ~seed:!rounds msg_size)
      else t1 := Padico.now grid);
  Madio.send la ~dst:(Simnet.Node.id b) (pattern ~seed:0 msg_size);
  Bhelp.run grid;
  if !rounds < pingpong_iters then failwith "e12: ping-pong incomplete";
  (Na.polls_idle (Na.get a), !t1)

let run () =
  let rec_ = Bhelp.record ~experiment:"e12" in
  Bhelp.print_header
    "E12 - scheduling & aggregation (64 B messages, Myrinet)";
  (* (a) headline throughput *)
  let t_off, sum_off, _ = burst ~agg:false () in
  let t_on, sum_on, saved = burst ~agg:true () in
  if sum_off <> sum_on then failwith "e12: goodput mismatch";
  let r_off = rate_msg_s t_off and r_on = rate_msg_s t_on in
  let speedup = r_on /. r_off in
  Printf.printf
    "(a) %d x %d B burst: %.2f Mmsg/s off -> %.2f Mmsg/s on (%.1fx, %d packets saved)\n"
    burst_count msg_size (r_off /. 1e6) (r_on /. 1e6) speedup saved;
  flush stdout;
  rec_ "rate_agg_off_msg_s" r_off;
  rec_ "rate_agg_on_msg_s" r_on;
  rec_ "agg_speedup" speedup;
  rec_ "agg_packets_saved" (float_of_int saved);
  (* (b) Pareto sweep over the coalescing budget *)
  print_endline
    "(b) latency/throughput Pareto (budget ; burst rate ; lone-message latency):";
  let lat_off = lone_latency ~agg:false () in
  Printf.printf "    %-10s %8.2f Mmsg/s   %6d ns\n" "off"
    (rate_msg_s t_off /. 1e6) lat_off;
  rec_ "lone_latency_off_ns" (float_of_int lat_off);
  List.iter
    (fun budget_ns ->
       let t, _, _ = burst ~budget_ns ~agg:true () in
       let lat = lone_latency ~budget_ns ~agg:true () in
       Printf.printf "    %-10s %8.2f Mmsg/s   %6d ns\n"
         (Printf.sprintf "%d ns" budget_ns)
         (rate_msg_s t /. 1e6) lat;
       flush stdout;
       rec_ (Printf.sprintf "agg_rate_b%d_msg_s" budget_ns) (rate_msg_s t);
       rec_
         (Printf.sprintf "agg_lone_latency_b%d_ns" budget_ns)
         (float_of_int lat))
    [ 1_000; 5_000; 20_000; 50_000 ];
  (* (c) adaptive polling *)
  let static_polls, static_t = polling Na.default_policy in
  let eager_polls, eager_t =
    polling (Na.Adaptive { Na.default_adaptive with Na.idle_backoff = false })
  in
  let backoff_polls, backoff_t = polling (Na.Adaptive Na.default_adaptive) in
  let reduction = float_of_int eager_polls /. float_of_int (max backoff_polls 1) in
  Printf.printf
    "(c) charged idle SysIO polls over %d ping-pongs:\n" pingpong_iters;
  Printf.printf "    %-18s %6d polls   %8d ns total\n" "static (no model)"
    static_polls static_t;
  Printf.printf "    %-18s %6d polls   %8d ns total\n" "adaptive eager"
    eager_polls eager_t;
  Printf.printf "    %-18s %6d polls   %8d ns total   (%.1fx fewer)\n"
    "adaptive backoff" backoff_polls backoff_t reduction;
  rec_ "polls_idle_static" (float_of_int static_polls);
  rec_ "polls_idle_eager" (float_of_int eager_polls);
  rec_ "polls_idle_backoff" (float_of_int backoff_polls);
  rec_ "poll_reduction" reduction;
  rec_ "pingpong_static_ns" (float_of_int static_t);
  rec_ "pingpong_backoff_ns" (float_of_int backoff_t);
  print_endline
    "expected shape: (a) >= 2x; (b) rate flat past ~5 us budget, lone latency";
  print_endline
    "grows with the budget; (c) backoff >= 5x fewer charged idle polls."
