(* Experiment E6 — NetAccess arbitration: several middleware sharing one
   node and one network.

   (a) MPI alone (baseline);
   (b) MPI + CORBA concurrently through the arbitration core: both make
       progress and the aggregate stays at the wire limit;
   (c) MPI + a middleware that busy-polls outside the arbitration layer
       (the paper's conflict: "the one which does active polling holds
       near 100% of the CPU"), collapsing MPI throughput;
   (d) interleaving-policy sweep (MadIO-vs-SysIO quanta). *)

module Bb = Engine.Bytebuf
module Cdr = Mw_corba.Cdr
module Orb = Mw_corba.Orb
module Mpi = Mw_mpi.Mpi
module Na = Netaccess.Na_core

let size = 8_192

let count = 600

(* Stream-completion throughput: bytes / (receive-complete - send-start).
   Unlike a receive-side window, this exposes starvation stalls. *)
type window = { mutable t0 : int; mutable t1 : int; mutable bytes : int }

let fresh_window () = { t0 = -1; t1 = 0; bytes = 0 }

let bw w = if w.t1 = 0 then nan else Bhelp.mb_s w.bytes (w.t1 - w.t0)

(* MPI stream with optional concurrent CORBA stream and optional CPU hog. *)
let scenario ~with_corba ~with_hog ?policy () =
  let grid, a, b = Bhelp.myrinet_pair () in
  (match policy with
   | Some p ->
     Na.set_policy (Na.get a) p;
     Na.set_policy (Na.get b) p
   | None -> ());
  let comms = Bhelp.mpi_pair grid a b in
  let mpi_w = fresh_window () in
  let corba_w = fresh_window () in
  ignore
    (Padico.spawn grid b ~name:"mpi-sink" (fun () ->
         for _ = 0 to count - 1 do
           ignore (Mpi.recv comms.(1) ~tag:1 ());
           mpi_w.bytes <- mpi_w.bytes + size
         done;
         mpi_w.t1 <- Padico.now grid));
  ignore
    (Padico.spawn grid a ~name:"mpi-src" (fun () ->
         mpi_w.t0 <- Padico.now grid;
         let payload = Bb.create size in
         for _ = 1 to count do
           Mpi.send comms.(0) ~dst:1 ~tag:1 payload
         done));
  if with_corba then begin
    let orb_a = Orb.init grid a in
    let orb_b = Orb.init grid b in
    let got = ref 0 in
    Orb.activate orb_b ~key:"sink" (fun ~op:_ _ ->
        corba_w.bytes <- corba_w.bytes + size;
        incr got;
        if !got = count then corba_w.t1 <- Padico.now grid;
        Ok Cdr.VNull);
    Orb.serve orb_b ~port:3000;
    ignore
      (Padico.spawn grid a ~name:"corba-src" (fun () ->
           corba_w.t0 <- Padico.now grid;
           let p =
             Orb.resolve orb_a
               { Orb.ior_node = b; ior_port = 3000; ior_key = "sink" }
           in
           let payload = Cdr.VOctets (Bb.create size) in
           for _ = 1 to count do
             Orb.invoke_oneway p ~op:"push" payload
           done))
  end;
  if with_hog then
    (* A middleware doing active polling outside the arbitration layer:
       user-level cooperative threads mean the polling loop relinquishes
       the CPU only very rarely — everything else stalls behind each long
       spin (the paper: "the one which does active polling holds near
       100% of the CPU time; it will result in inequity or even
       deadlock"). *)
    ignore
      (Padico.spawn grid b ~name:"busy-poller" (fun () ->
           while Padico.now grid < Engine.Time.sec 2990 do
             Simnet.Node.cpu b 300_000_000;
             Engine.Proc.sleep (Padico.sim grid) 1_000
           done));
  Padico.run grid ~until:(Engine.Time.sec 3000);
  let aggregate =
    if with_corba && mpi_w.t1 > 0 && corba_w.t1 > 0 then
      Bhelp.mb_s
        (mpi_w.bytes + corba_w.bytes)
        (max mpi_w.t1 corba_w.t1 - min mpi_w.t0 corba_w.t0)
    else nan
  in
  (bw mpi_w, bw corba_w, aggregate)

let run () =
  Bhelp.print_header
    "E6 — arbitration: middleware sharing one node (8 KB messages, MB/s, Myrinet)";
  let mpi_alone, _, _ = scenario ~with_corba:false ~with_hog:false () in
  Printf.printf "%-46s MPI %s\n" "(a) MPI alone" (Bhelp.pp_mb mpi_alone);
  flush stdout;
  let m, c, agg = scenario ~with_corba:true ~with_hog:false () in
  Printf.printf "%-46s MPI %s   CORBA %s   (shared-window aggregate %s)\n"
    "(b) MPI + CORBA through NetAccess" (Bhelp.pp_mb m) (Bhelp.pp_mb c)
    (Bhelp.pp_mb agg);
  flush stdout;
  let m, _, _ = scenario ~with_corba:false ~with_hog:true () in
  Printf.printf "%-46s MPI %s\n"
    "(c) MPI + busy-polling middleware (no arb.)" (Bhelp.pp_mb m);
  flush stdout;
  print_endline
    "(d) interleaving policy sweep (MPI + CORBA; quanta only matter under";
  print_endline "    dispatcher backlog, so differences stay small here):";
  List.iter
    (fun (mq, sq) ->
       let m, c, _ =
         scenario ~with_corba:true ~with_hog:false
           ~policy:(Na.Static { Na.madio_quantum = mq; sysio_quantum = sq })
           ()
       in
       Printf.printf "    madio:sysio = %2d:%-2d   MPI %s   CORBA %s\n" mq sq
         (Bhelp.pp_mb m) (Bhelp.pp_mb c);
       flush stdout)
    [ (1, 1); (4, 4); (16, 1); (1, 16) ];
  print_endline
    "expected shape: (b) both progress, aggregate near the wire; (c) collapses."
