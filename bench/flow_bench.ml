(* Flow — E11: end-to-end flow control and overload protection.

   A fast producer streams into a consumer that drains two orders of
   magnitude slower (the 100:1 mismatch that, without flow control, turns
   every queue in the stack into an unbounded buffer). Three runs:

   1. unbounded: watermarks and windows disabled — the receive queue
      absorbs nearly the whole transfer (memory grows with the mismatch);
   2. bounded: default Resilient windows + a MadIO credit window — peak
      queued bytes stay pinned near the configured watermark while
      goodput is unchanged (the consumer was the bottleneck all along);
   3. bounded + fault: same flow-control settings composed with the E10
      SAN-kill plan — failover still completes, no credit/window
      deadlock across the adapter switch.

   All numbers are virtual-time and deterministic. Recorded in
   EXPERIMENTS.md (experiment E11). Under --backend host the same three
   runs execute over real Unix sockets (MadIO credits do not exist there —
   the SAN pair rides SysIO streams, so only the Resilient windows bound
   the queue) and the wall-clock metrics land under e11_host.* keys. *)

module Bb = Engine.Bytebuf
module Vl = Vlink.Vl
module Time = Engine.Time
module Proc = Engine.Proc
module Plan = Padico_fault.Plan
module Inject = Padico_fault.Inject
module Madio = Netaccess.Madio

let total = 4_000_000

let chunk = 16_384

(* Consumer pace: Myrinet-2000 moves ~250 MB/s, so reading one chunk per
   ~6.5 ms is a ~100:1 producer/consumer mismatch. *)
let consumer_delay_ns = Time.us 6_500

let credit_window = 131_072

let san_lan_pair () =
  let grid = Padico.create ~backend:!Bhelp.backend () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  let san =
    Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san" [ a; b ]
  in
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]);
  (grid, a, b, san)

(* One slow-consumer transfer; returns (goodput MB/s, consumer-side peak
   queued bytes, producer-side MadIO credit stalls). The producer lives on
   the listening node so the measuring side (client conn) is the consumer
   and [Resilient.stats] reports its exact receive-queue high-water mark. *)
let slow_consumer ~bounded ~plan () =
  let grid, a, b, san = san_lan_pair () in
  let sim = Padico.backend grid = Padico.Sim in
  if bounded && sim then begin
    Madio.set_credit_window (Padico.madio grid a san) credit_window;
    Madio.set_credit_window (Padico.madio grid b san) credit_window
  end;
  let config =
    if bounded then Resilient.default_config
    else
      { Resilient.default_config with
        tx_window = max_int; rx_high = max_int; rx_low = max_int }
  in
  (* Producer: full speed, but through the EAGAIN discipline — a write
     that would overrun the windows parks on [wait_writable] instead of
     growing a queue. *)
  Resilient.listen ~config grid b ~port:9100 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"producer" (fun () ->
             let sent = ref 0 in
             while !sent < total do
               let n = min chunk (total - !sent) in
               match Personalities.Vio.try_write vl (Bb.create n) with
               | `Ok k -> sent := !sent + k
               | `Again -> Personalities.Vio.wait_writable vl
             done;
             (* Hold the link until the consumer is done, then release
                it: the host reactor only quiesces once every socket is
                closed on both sides. *)
             (match Vl.await (Vl.post_read vl (Bb.create 1)) with
              | Vl.Done _ | Vl.Eof | Vl.Again | Vl.Error _ -> ());
             Vl.close vl)));
  let conn = Resilient.connect ~config grid ~src:a ~dst:b ~port:9100 in
  (* Fault plans are authored relative to session establishment, which on
     the host backend lands at an unpredictable wall-clock offset (grid
     setup plus a real-socket HELLO exchange). Arm them when the session
     actually comes up — once: a failover re-establishes the session, and
     re-arming would replay the fault against the fallback link. *)
  (match plan with
   | [] -> ()
   | plan ->
     let armed = ref false in
     Resilient.on_established conn (fun () ->
         if not !armed then begin
           armed := true;
           ignore
             (Inject.apply ~base_ns:(Padico.now grid) (Padico.net grid) plan)
         end));
  let cvl = Resilient.vl conn in
  let t0 = ref 0 and t1 = ref 0 in
  let h =
    Padico.spawn grid a ~name:"consumer" (fun () ->
        (match Vl.await_connected cvl with
         | Ok () -> ()
         | Error m -> failwith ("connect: " ^ m));
        t0 := Padico.now grid;
        let buf = Bb.create chunk in
        let received = ref 0 in
        while !received < total do
          (match Vl.await (Vl.post_read cvl buf) with
           | Vl.Done n -> received := !received + n
           | Vl.Eof | Vl.Again -> failwith "consumer: premature eof"
           | Vl.Error m -> failwith ("read: " ^ m));
          if !received < total then
            Proc.sleep_on (Simnet.Node.clock a) consumer_delay_ns
        done;
        t1 := Padico.now grid;
        Vl.close cvl)
  in
  Bhelp.run grid;
  Bhelp.fail_on_error h;
  let st = Resilient.stats conn in
  let stalls =
    if sim then Madio.credit_stalls (Padico.madio grid b san) else 0
  in
  (Bhelp.mb_s total (!t1 - !t0), st, stalls)

let run () =
  let host = !Bhelp.backend = Padico.Host in
  Bhelp.print_header
    (if host then
       "E11 — flow control and overload protection (host backend, \
        wall-clock)"
     else "E11 — flow control and overload protection");
  let rec_ =
    Bhelp.record ~experiment:(if host then "e11_host" else "e11")
  in

  let un_bw, un_st, _ = slow_consumer ~bounded:false ~plan:[] () in
  Printf.printf "%-42s %10.2f MB/s  (rx peak %d bytes)\n"
    "4 MB @ 100:1 mismatch, unbounded" un_bw un_st.Resilient.rx_peak;
  rec_ "unbounded_goodput_mb_s" un_bw;
  rec_ "unbounded_rx_peak_bytes" (float_of_int un_st.Resilient.rx_peak);

  let bo_bw, bo_st, bo_stalls = slow_consumer ~bounded:true ~plan:[] () in
  Printf.printf "%-42s %10.2f MB/s  (rx peak %d bytes)\n"
    "4 MB @ 100:1 mismatch, bounded" bo_bw bo_st.Resilient.rx_peak;
  Printf.printf "%-42s %10d\n" "  MadIO credit stalls (producer)" bo_stalls;
  rec_ "bounded_goodput_mb_s" bo_bw;
  rec_ "bounded_rx_peak_bytes" (float_of_int bo_st.Resilient.rx_peak);
  rec_ "bounded_credit_stalls" (float_of_int bo_stalls);
  rec_ "goodput_ratio" (bo_bw /. un_bw);

  let rx_high = Resilient.default_config.Resilient.rx_high in
  let slack = 65_536 (* one in-flight frame may land past the watermark *) in
  if bo_st.Resilient.rx_peak > rx_high + slack then
    Printf.printf
      "WARNING: bounded rx peak %d exceeds watermark %d (+%d slack)\n"
      bo_st.Resilient.rx_peak rx_high slack;
  if bo_bw < 0.95 *. un_bw then
    print_endline "WARNING: flow control cost more than 5% goodput!";

  (* 5 ms after establishment is mid-stream on both backends: the plan is
     anchored by the establishment hook, so the real-socket handshake's
     wall-clock cost no longer races the fault. *)
  let fault_at = Time.ms 5 in
  let plan = [ { Plan.at_ns = fault_at; action = Plan.Link_down "san" } ] in
  let fc_bw, fc_st, _ = slow_consumer ~bounded:true ~plan () in
  Printf.printf "%-42s %10.2f MB/s  (switches %d, rx peak %d)\n"
    (Printf.sprintf "bounded + SAN down at +%d ms" (fault_at / 1_000_000))
    fc_bw fc_st.Resilient.switches
    fc_st.Resilient.rx_peak;
  rec_ "fault_goodput_mb_s" fc_bw;
  rec_ "fault_switches" (float_of_int fc_st.Resilient.switches);
  rec_ "fault_rx_peak_bytes" (float_of_int fc_st.Resilient.rx_peak);
  if fc_st.Resilient.switches < 1 then
    print_endline "WARNING: no failover happened — check the plan!"
