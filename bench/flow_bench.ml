(* Flow — E11: end-to-end flow control and overload protection.

   A fast producer streams into a consumer that drains two orders of
   magnitude slower (the 100:1 mismatch that, without flow control, turns
   every queue in the stack into an unbounded buffer). Three runs:

   1. unbounded: watermarks and windows disabled — the receive queue
      absorbs nearly the whole transfer (memory grows with the mismatch);
   2. bounded: default Resilient windows + a MadIO credit window — peak
      queued bytes stay pinned near the configured watermark while
      goodput is unchanged (the consumer was the bottleneck all along);
   3. bounded + fault: same flow-control settings composed with the E10
      SAN-kill plan — failover still completes, no credit/window
      deadlock across the adapter switch.

   All numbers are virtual-time and deterministic. Recorded in
   EXPERIMENTS.md (experiment E11). *)

module Bb = Engine.Bytebuf
module Vl = Vlink.Vl
module Time = Engine.Time
module Proc = Engine.Proc
module Plan = Padico_fault.Plan
module Inject = Padico_fault.Inject
module Madio = Netaccess.Madio

let total = 4_000_000

let chunk = 16_384

(* Consumer pace: Myrinet-2000 moves ~250 MB/s, so reading one chunk per
   ~6.5 ms is a ~100:1 producer/consumer mismatch. *)
let consumer_delay_ns = Time.us 6_500

let credit_window = 131_072

let san_lan_pair () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  let san =
    Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san" [ a; b ]
  in
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]);
  (grid, a, b, san)

(* One slow-consumer transfer; returns (goodput MB/s, consumer-side peak
   queued bytes, producer-side MadIO credit stalls). The producer lives on
   the listening node so the measuring side (client conn) is the consumer
   and [Resilient.stats] reports its exact receive-queue high-water mark. *)
let slow_consumer ~bounded ~plan () =
  let grid, a, b, san = san_lan_pair () in
  if bounded then begin
    Madio.set_credit_window (Padico.madio grid a san) credit_window;
    Madio.set_credit_window (Padico.madio grid b san) credit_window
  end;
  (match plan with
   | [] -> ()
   | plan -> ignore (Inject.apply (Padico.net grid) plan));
  let config =
    if bounded then Resilient.default_config
    else
      { Resilient.default_config with
        tx_window = max_int; rx_high = max_int; rx_low = max_int }
  in
  (* Producer: full speed, but through the EAGAIN discipline — a write
     that would overrun the windows parks on [wait_writable] instead of
     growing a queue. *)
  Resilient.listen ~config grid b ~port:9100 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"producer" (fun () ->
             let sent = ref 0 in
             while !sent < total do
               let n = min chunk (total - !sent) in
               match Personalities.Vio.try_write vl (Bb.create n) with
               | `Ok k -> sent := !sent + k
               | `Again -> Personalities.Vio.wait_writable vl
             done)));
  let conn = Resilient.connect ~config grid ~src:a ~dst:b ~port:9100 in
  let cvl = Resilient.vl conn in
  let t0 = ref 0 and t1 = ref 0 in
  let h =
    Padico.spawn grid a ~name:"consumer" (fun () ->
        (match Vl.await_connected cvl with
         | Ok () -> ()
         | Error m -> failwith ("connect: " ^ m));
        t0 := Padico.now grid;
        let buf = Bb.create chunk in
        let received = ref 0 in
        while !received < total do
          (match Vl.await (Vl.post_read cvl buf) with
           | Vl.Done n -> received := !received + n
           | Vl.Eof | Vl.Again -> failwith "consumer: premature eof"
           | Vl.Error m -> failwith ("read: " ^ m));
          if !received < total then
            Proc.sleep (Simnet.Node.sim a) consumer_delay_ns
        done;
        t1 := Padico.now grid)
  in
  Bhelp.run grid;
  Bhelp.fail_on_error h;
  let st = Resilient.stats conn in
  let stalls = Madio.credit_stalls (Padico.madio grid b san) in
  (Bhelp.mb_s total (!t1 - !t0), st, stalls)

let run () =
  Bhelp.print_header "E11 — flow control and overload protection";
  let rec_ = Bhelp.record ~experiment:"e11" in

  let un_bw, un_st, _ = slow_consumer ~bounded:false ~plan:[] () in
  Printf.printf "%-42s %10.2f MB/s  (rx peak %d bytes)\n"
    "4 MB @ 100:1 mismatch, unbounded" un_bw un_st.Resilient.rx_peak;
  rec_ "unbounded_goodput_mb_s" un_bw;
  rec_ "unbounded_rx_peak_bytes" (float_of_int un_st.Resilient.rx_peak);

  let bo_bw, bo_st, bo_stalls = slow_consumer ~bounded:true ~plan:[] () in
  Printf.printf "%-42s %10.2f MB/s  (rx peak %d bytes)\n"
    "4 MB @ 100:1 mismatch, bounded" bo_bw bo_st.Resilient.rx_peak;
  Printf.printf "%-42s %10d\n" "  MadIO credit stalls (producer)" bo_stalls;
  rec_ "bounded_goodput_mb_s" bo_bw;
  rec_ "bounded_rx_peak_bytes" (float_of_int bo_st.Resilient.rx_peak);
  rec_ "bounded_credit_stalls" (float_of_int bo_stalls);
  rec_ "goodput_ratio" (bo_bw /. un_bw);

  let rx_high = Resilient.default_config.Resilient.rx_high in
  let slack = 65_536 (* one in-flight frame may land past the watermark *) in
  if bo_st.Resilient.rx_peak > rx_high + slack then
    Printf.printf
      "WARNING: bounded rx peak %d exceeds watermark %d (+%d slack)\n"
      bo_st.Resilient.rx_peak rx_high slack;
  if bo_bw < 0.95 *. un_bw then
    print_endline "WARNING: flow control cost more than 5% goodput!";

  let plan = [ { Plan.at_ns = Time.ms 5; action = Plan.Link_down "san" } ] in
  let fc_bw, fc_st, _ = slow_consumer ~bounded:true ~plan () in
  Printf.printf "%-42s %10.2f MB/s  (switches %d, rx peak %d)\n"
    "bounded + SAN down at 5 ms" fc_bw fc_st.Resilient.switches
    fc_st.Resilient.rx_peak;
  rec_ "fault_goodput_mb_s" fc_bw;
  rec_ "fault_switches" (float_of_int fc_st.Resilient.switches);
  rec_ "fault_rx_peak_bytes" (float_of_int fc_st.Resilient.rx_peak);
  if fc_st.Resilient.switches < 1 then
    print_endline "WARNING: no failover happened — check the plan!"
