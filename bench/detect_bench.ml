(* E14: failure detection and self-healing collectives at grid scale.

   The E13 grid (8 Myrinet islands x 128 nodes, one VTHD WAN backbone,
   1024 ranks) runs a multilevel allreduce as a healing group while a
   member crashes with the operation in flight. Two victims are
   exercised: a leaf rank (cluster-local recovery) and a cluster proxy
   (the WAN-facing representative — its death forces a proxy re-election
   on top of the eviction). In both cases every survivor must deliver the
   exact reduction over the surviving contributions.

   Reported per victim kind:
   - recovery time: crash -> first post-eviction completed collective
     (the in-flight allreduce that stalls on the dead rank, heals, and
     retries over the shrunken group);
   - WAN crossings of a full-group allreduce before the crash vs a
     steady-state allreduce after the eviction — the recovery's lasting
     price (or saving: one fewer cluster member) on the scarce resource.

   Sim numbers are virtual-time and deterministic, recorded under e14.*.
   Under --backend host the same scenario runs on a small grid over real
   Unix sockets: the crash kills the victim's sockets (peers see RST,
   which short-circuits phi accrual), and wall-clock metrics land under
   e14_host.*. *)

module Bb = Engine.Bytebuf
module Time = Engine.Time
module Proc = Engine.Proc
module Node = Simnet.Node
module Group = Collectives.Group
module Netdb = Selector.Netdb
module Gridgen = Scenario.Gridgen
module Plan = Padico_fault.Plan
module Inject = Padico_fault.Inject

let payload = 4096

let pattern n seed =
  let b = Bb.create n in
  Bb.fill_pattern b ~seed;
  b

(* Reference result: xor-fold of the surviving ranks' contributions —
   what the healing retry must recompute once the victim is evicted. *)
let expected_xor ~n ~victim =
  let acc = Bb.create payload in
  for r = 0 to n - 1 do
    if r <> victim then begin
      let c = pattern payload (r + 1) in
      for i = 0 to payload - 1 do
        Bb.set_u8 acc i (Bb.get_u8 acc i lxor Bb.get_u8 c i)
      done
    end
  done;
  Bb.to_string acc

type outcome = {
  recovery_ns : int;
  wan_msgs_before : int;
  wan_bytes_before : int;
  wan_msgs_after : int;
  wan_bytes_after : int;
}

(* One crash scenario on an already-generated grid. Timeline (sim ns or
   host wall ns after start):
     0        all ranks join a warm-up allreduce (full group, measured
              as the pre-crash WAN cost)
     crash_at victim node dies (host: its sockets RST)
     ops_at   survivors post the measured allreduce — the detector has
              not confirmed yet, so the operation genuinely stalls on
              the dead member, then eviction rewinds and completes it
     ...      one more allreduce in the epoch-1 steady state (the
              post-eviction WAN cost), then retire *)
let scenario g ~label ~victim ~heal ~crash_at ~deadline_ns ~until =
  let grid = g.Gridgen.grid in
  let nodes = Array.of_list g.Gridgen.nodes in
  let n = Array.length nodes in
  let groups =
    Group.create ~strategy:Group.Multilevel ~deadline_ns ~heal grid
      ~name:("e14-" ^ label) g.Gridgen.nodes
  in
  let ops_at = crash_at + Time.ms 1 in
  let want = expected_xor ~n ~victim in
  let gm0 = groups.(0) in
  let recovery_ns = ref 0 in
  let wan_before = ref (0, 0) in
  let wan_after = ref (0, 0) in
  ignore
    (Inject.apply (Padico.net grid)
       [ { Plan.at_ns = crash_at;
           action = Plan.Node_crash (Node.name nodes.(victim)) } ]);
  let hs =
    Array.mapi
      (fun r node ->
         Padico.spawn grid node ~name:(Printf.sprintf "e14-%s-%d" label r)
           (fun () ->
              let gm = groups.(r) in
              let m0 = Group.wan_messages gm0 and b0 = Group.wan_bytes gm0 in
              (try
                 ignore
                   (Group.allreduce gm ~op:Group.Bxor
                      (pattern payload (r + 1)))
               with Group.Failed _ when r = victim -> ());
              if r = 0 && Padico.now grid >= crash_at then
                failwith
                  (Printf.sprintf
                     "e14-%s: warm-up ran past the crash time (%d ns) — \
                      raise crash_at"
                     label (Padico.now grid));
              if r <> victim then begin
                let now = Padico.now grid in
                if now < ops_at then
                  Proc.sleep_on (Node.clock node) (ops_at - now);
                (* By now the warm-up's cross-cluster tail has drained and
                   no eviction traffic exists yet (detection needs several
                   intervals of silence), so the delta is exactly one
                   full-group allreduce. *)
                if r = 0 then
                  wan_before :=
                    (Group.wan_messages gm0 - m0, Group.wan_bytes gm0 - b0);
                let res =
                  Group.allreduce gm ~op:Group.Bxor (pattern payload (r + 1))
                in
                if Bb.to_string res <> want then
                  failwith
                    (Printf.sprintf
                       "e14-%s: rank %d allreduce diverged from the \
                        surviving-ranks reduction (epoch %d, dead [%s])"
                       label r (Group.epoch gm)
                       (String.concat ";"
                          (List.map string_of_int (Group.dead_ranks gm))));
                if r = 0 then recovery_ns := Padico.now grid - crash_at;
                (* One settling round first: the healed operation's retry
                   tail (late acks, re-serves) must drain before the
                   steady-state WAN cost is snapshotted, or it pollutes
                   the "after" window. *)
                ignore
                  (Group.allreduce gm ~op:Group.Bxor (pattern payload (r + 1)));
                let m1 = Group.wan_messages gm0
                and b1 = Group.wan_bytes gm0 in
                ignore
                  (Group.allreduce gm ~op:Group.Bxor (pattern payload (r + 1)));
                if r = 0 then
                  wan_after :=
                    (Group.wan_messages gm0 - m1, Group.wan_bytes gm0 - b1)
              end))
      nodes
  in
  Padico.run grid ~until;
  Array.iter Group.retire groups;
  Array.iteri
    (fun r h ->
       if r <> victim then
         match Proc.result h with
         | Some (Ok ()) -> ()
         | Some (Error e) ->
           Printf.eprintf "e14-%s: rank %d raised %s\n" label r
             (Printexc.to_string e);
           exit 1
         | None ->
           Printf.eprintf "e14-%s: rank %d never finished (hang)\n" label r;
           exit 1)
    hs;
  if Group.epoch gm0 <> 1 || Group.dead_ranks gm0 <> [ victim ] then begin
    Printf.eprintf "e14-%s: rank 0 membership wrong (epoch %d)\n" label
      (Group.epoch gm0);
    exit 1
  end;
  let mb, bb = !wan_before and ma, ba = !wan_after in
  { recovery_ns = !recovery_ns; wan_msgs_before = mb; wan_bytes_before = bb;
    wan_msgs_after = ma; wan_bytes_after = ba }

let report ~experiment ~case o =
  let rec_ k v = Bhelp.record ~experiment (case ^ "." ^ k) v in
  Printf.printf
    "%-18s recovery %8.2f ms   wan before %6d msgs %9d B   after %6d msgs \
     %9d B\n"
    case
    (float_of_int o.recovery_ns /. 1e6)
    o.wan_msgs_before o.wan_bytes_before o.wan_msgs_after o.wan_bytes_after;
  rec_ "recovery_ms" (float_of_int o.recovery_ns /. 1e6);
  rec_ "wan_msgs_before" (float_of_int o.wan_msgs_before);
  rec_ "wan_bytes_before" (float_of_int o.wan_bytes_before);
  rec_ "wan_msgs_after" (float_of_int o.wan_msgs_after);
  rec_ "wan_bytes_after" (float_of_int o.wan_bytes_after)

let run_sim () =
  let clusters = 8 and per_cluster = 128 in
  Bhelp.print_header
    (Printf.sprintf
       "E14: self-healing collectives under member crash (%d clusters x %d \
        nodes = %d ranks)"
       clusters per_cluster (clusters * per_cluster));
  (* A 1 ms heartbeat at 1024 ranks is ~4.5 M frames per simulated
     second of pure monitoring — affordable on a real grid, not in a
     discrete-event run of it. A 10 ms tick keeps the event count sane;
     every suspicion horizon stretches by the same factor, so the
     detector's shape (and the recovery story) is unchanged, just
     slower. *)
  let heal = { Detect.default_config with Detect.interval_ns = Time.ms 10 } in
  let go ~case ~victim_of =
    let g =
      Gridgen.generate ~clusters ~nodes_per_cluster:per_cluster ()
    in
    let victim = victim_of g in
    let o =
      scenario g ~label:case ~victim ~heal ~crash_at:(Time.ms 200)
        ~deadline_ns:(Time.sec 2) ~until:(Time.sec 3)
    in
    report ~experiment:"e14" ~case o
  in
  (* Leaf: a mid-island rank — recovery is cluster-local plus the epoch
     flood. Proxy: cluster 1's WAN representative — the eviction also
     re-elects the island's proxy. *)
  go ~case:"leaf" ~victim_of:(fun _ -> per_cluster + 1);
  go ~case:"proxy" ~victim_of:(fun g ->
      (* Netdb's convention: the proxy is the cluster's smallest rank.
         Read it from the topology database instead of hard-coding. *)
      let db =
        Netdb.build
          (Padico.net g.Gridgen.grid)
          (Array.of_list g.Gridgen.nodes)
      in
      Netdb.leader db (Netdb.cluster_of db per_cluster))

let run_host () =
  let clusters = 2 and per_cluster = 2 in
  Bhelp.print_header
    (Printf.sprintf
       "E14: self-healing collectives under a real-socket kill (host \
        backend, %d x %d ranks, wall-clock)"
       clusters per_cluster);
  let g =
    Gridgen.generate ~backend:Padico.Host ~clusters
      ~nodes_per_cluster:per_cluster ()
  in
  (* Wall-clock timings are loose: the warm-up includes real connect(2)
     handshakes, so the crash lands late enough to be safely past it.
     The heartbeat tick is coarse (25 ms wall): on a real scheduler a
     millisecond horizon false-confirms on any epoll or GC hiccup, and
     the kill is detected through the socket RST short-circuit anyway —
     phi accrual is only the fallback here. *)
  let heal =
    { Detect.default_config with Detect.interval_ns = Time.ms 25 }
  in
  let o =
    scenario g ~label:"host-leaf" ~victim:3 ~heal ~crash_at:(Time.ms 400)
      ~deadline_ns:(Time.sec 1) ~until:(Time.sec 3)
  in
  report ~experiment:"e14_host" ~case:"leaf" o

let run () =
  if !Bhelp.backend = Padico.Host then run_host () else run_sim ()
