(* E16: multicore engine — conservative parallel simulation over topology
   shards.

   The E13 grid shape (8 SAN islands on one shared WAN backbone, 1000
   ranks) sharded along its islands: one shard per island, WAN latency as
   lookahead. Every rank runs a multilevel allreduce + bcast, so the
   workload is the real full stack (MadIO over the SAN inside each shard,
   TCP over the WAN between shards), not a synthetic event storm.

   Two claims are measured:

   - determinism: the complete outcome digest (virtual end time, payload
     checksums, WAN traffic) is byte-identical for every domain count —
     outcomes are a function of the shard partition, never the worker
     count. Checked on every run below and exhaustively in
     test/test_shard.ml.
   - speedup: wall-clock (min of repeats) for 2/4/8 worker domains
     against the same sharded grid on 1 domain, recorded under e16 keys.
     The numbers are honest for the machine they ran on: on a host with
     fewer cores than domains the parallel runs only add synchronization
     overhead, so the >= 3x acceptance bar for 8 domains is asserted only
     when the host actually offers 8 cores
     (Domain.recommended_domain_count); below that the measured ratios
     are still recorded, with the core count, so the trajectory is
     interpretable. *)

module Bb = Engine.Bytebuf
module Group = Collectives.Group
module Gridgen = Scenario.Gridgen

let clusters = 8
let per_cluster = 125 (* 8 x 125 = 1000 ranks, one shard per island *)
let payload = 512
let repeats = 2
let domain_counts = [ 1; 2; 4; 8 ]

let pattern n seed =
  let b = Bb.create n in
  Bb.fill_pattern b ~seed;
  b

(* One full run under [domains] workers: fresh grid, every rank allreduce
   + bcast, drained to quiescence. Returns (wall seconds, digest). *)
let run_once ~domains =
  Padico.reset ();
  let g =
    Gridgen.generate ~seed:4242 ~sharded:true ~clusters
      ~nodes_per_cluster:per_cluster ()
  in
  let nodes = Array.of_list g.Gridgen.nodes in
  let groups = Group.create g.Gridgen.grid ~name:"e16" g.Gridgen.nodes in
  let sum = Atomic.make 0 in
  let hs =
    Array.mapi
      (fun r node ->
         Padico.spawn g.Gridgen.grid node
           ~name:(Printf.sprintf "e16-%d" r)
           (fun () ->
              let a =
                Group.allreduce groups.(r) ~op:Group.Bxor
                  (pattern payload (r + 1))
              in
              ignore (Atomic.fetch_and_add sum (Bb.checksum a));
              let b =
                Group.bcast groups.(r) ~root:0
                  (if r = 0 then pattern payload 42 else Bb.create 0)
              in
              ignore (Atomic.fetch_and_add sum (Bb.checksum b))))
      nodes
  in
  let t0 = Unix.gettimeofday () in
  Padico.run g.Gridgen.grid ~until:(Engine.Time.sec 3600) ~domains;
  let wall = Unix.gettimeofday () -. t0 in
  Array.iter Scenario.fail_on_error hs;
  let digest =
    ( Padico.now g.Gridgen.grid, Atomic.get sum,
      Group.wan_messages groups.(0), Group.wan_bytes groups.(0) )
  in
  (wall, digest)

let run () =
  let cores = Domain.recommended_domain_count () in
  Scenario.print_header
    (Printf.sprintf
       "E16: multicore engine (%d islands x %d nodes = %d ranks, %d shards, \
        %d cores available)"
       clusters per_cluster (clusters * per_cluster) clusters cores);
  let rec_ k v = Bhelp.record ~experiment:"e16" k v in
  rec_ "nodes" (float_of_int (clusters * per_cluster));
  rec_ "shards" (float_of_int clusters);
  rec_ "cores" (float_of_int cores);
  let reference = ref None in
  let wall_of d =
    let best = ref infinity in
    for _ = 1 to repeats do
      let wall, digest = run_once ~domains:d in
      best := Stdlib.min !best wall;
      match !reference with
      | None -> reference := Some digest
      | Some r ->
        if digest <> r then begin
          Printf.eprintf
            "e16: outcome digest differs on %d domains — determinism \
             violated\n"
            d;
          exit 1
        end
    done;
    !best
  in
  let wall1 = wall_of 1 in
  Printf.printf "  %d domains  %7.0f ms  (baseline)\n%!" 1 (wall1 *. 1e3);
  rec_ "wall_ms.d1" (wall1 *. 1e3);
  List.iter
    (fun d ->
       let wall = wall_of d in
       let speedup = wall1 /. wall in
       Printf.printf "  %d domains  %7.0f ms  speedup %.2fx%s\n%!" d
         (wall *. 1e3) speedup
         (if cores < d then
            Printf.sprintf "  (only %d core%s — overhead expected)" cores
              (if cores = 1 then "" else "s")
          else "");
       rec_ (Printf.sprintf "wall_ms.d%d" d) (wall *. 1e3);
       rec_ (Printf.sprintf "speedup.d%d" d) speedup;
       (* The acceptance bar only means something when the hardware can
          actually run the domains in parallel. *)
       if d = 8 && cores >= 8 && speedup < 3.0 then begin
         Printf.eprintf
           "e16: speedup on 8 domains is %.2fx, below the 3x bar despite \
            %d cores\n"
           speedup cores;
         exit 1
       end)
    (List.filter (fun d -> d > 1) domain_counts);
  print_endline "  outcome digests byte-identical across all domain counts"
