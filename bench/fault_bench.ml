(* Fault — E10: fault injection and failover resilience.

   Two measurements:
   1. loss-burst degradation: one-way Vio latency over the VTHD WAN, clean
      versus with an injected loss burst covering the measured window — the
      cost of riding TCP retransmissions through a lossy episode;
   2. failover: a resilient echo transfer on a Myrinet-SAN + Fast-Ethernet
      pair with the SAN killed mid-transfer. Reported: adapter switches,
      reconnect attempts, virtual downtime, and goodput versus the clean
      run and versus a LAN-only baseline (the floor once failed over).

   All numbers are virtual-time; same seed and plan replay identically.
   Numbers are recorded in EXPERIMENTS.md (experiment E10). *)

module Bb = Engine.Bytebuf
module Vl = Vlink.Vl
module Time = Engine.Time
module Plan = Padico_fault.Plan
module Inject = Padico_fault.Inject

let lat_iters = 100

let wan_latency ~loss_burst () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore (Padico.add_segment grid Simnet.Presets.vthd ~name:"wan" [ a; b ]);
  if loss_burst then
    ignore
      (Inject.apply (Padico.net grid)
         [ { Plan.at_ns = Time.ms 1;
             action =
               Plan.Loss_burst
                 { link = "wan"; loss = 0.02; duration_ns = Time.sec 30 } } ]);
  Bhelp.vio_latency grid ~src:a ~dst:b ~port:4000 ~size:4 ~iters:lat_iters

let san_lan_pair () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore
    (Padico.add_segment grid Simnet.Presets.myrinet2000 ~name:"san" [ a; b ]);
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]);
  (grid, a, b)

let total = 8_000_000

let chunk = 65_536

(* Resilient round-trip echo of [total] bytes under [plan]; returns
   (goodput MB/s counting both directions, failover stats). *)
let resilient_echo ~plan () =
  let grid, a, b = san_lan_pair () in
  (match plan with
   | [] -> ()
   | plan -> ignore (Inject.apply (Padico.net grid) plan));
  Resilient.listen grid b ~port:9000 (fun vl ->
      ignore
        (Padico.spawn grid b ~name:"echo" (fun () ->
             let buf = Bb.create chunk in
             let rec loop () =
               match Vl.await (Vl.post_read vl buf) with
               | Vl.Done n ->
                 (match Vl.await (Vl.post_write vl (Bb.sub buf 0 n)) with
                  | Vl.Done _ -> loop ()
                  | _ -> ())
               | _ -> ()
             in
             loop ())));
  let conn = Resilient.connect grid ~src:a ~dst:b ~port:9000 in
  let cvl = Resilient.vl conn in
  let t0 = ref 0 and t1 = ref 0 in
  let received = ref 0 in
  let h =
    Padico.spawn grid a ~name:"client" (fun () ->
        (match Vl.await_connected cvl with
         | Ok () -> ()
         | Error m -> failwith ("connect: " ^ m));
        t0 := Padico.now grid;
        let sent = ref 0 in
        while !sent < total do
          let n = min chunk (total - !sent) in
          ignore (Vl.post_write cvl (Bb.create n));
          sent := !sent + n
        done;
        let buf = Bb.create chunk in
        let rec rd () =
          if !received < total then
            match Vl.await (Vl.post_read cvl buf) with
            | Vl.Done n ->
              received := !received + n;
              rd ()
            | Vl.Eof | Vl.Again -> ()
            | Vl.Error m -> failwith ("read: " ^ m)
        in
        rd ();
        t1 := Padico.now grid)
  in
  Bhelp.run grid;
  Bhelp.fail_on_error h;
  if !received < total then
    failwith (Printf.sprintf "incomplete: %d/%d bytes" !received total);
  (Bhelp.mb_s (2 * total) (!t1 - !t0), Resilient.stats conn)

(* The post-failover floor: the same transfer with only the LAN. *)
let lan_only_goodput () =
  let grid = Padico.create () in
  let a = Padico.add_node grid "a" in
  let b = Padico.add_node grid "b" in
  ignore
    (Padico.add_segment grid Simnet.Presets.ethernet100 ~name:"lan" [ a; b ]);
  let bw =
    Bhelp.vio_stream_bw grid ~src:a ~dst:b ~port:5000 ~total ~chunk
  in
  bw

let run () =
  Bhelp.print_header "E10 — fault injection and failover resilience";
  let rec_ = Bhelp.record ~experiment:"e10" in

  let clean_lat = wan_latency ~loss_burst:false () in
  let burst_lat = wan_latency ~loss_burst:true () in
  Printf.printf "%-42s %10.2f us\n" "vio/VTHD latency, clean" clean_lat;
  Printf.printf "%-42s %10.2f us   (x%.2f)\n"
    "vio/VTHD latency, 2% loss burst" burst_lat (burst_lat /. clean_lat);
  rec_ "wan_latency_clean_us" clean_lat;
  rec_ "wan_latency_lossburst_us" burst_lat;

  let clean_bw, clean_st = resilient_echo ~plan:[] () in
  Printf.printf "%-42s %10.2f MB/s  (driver %s)\n"
    "resilient echo 8 MB, no faults" clean_bw clean_st.Resilient.driver;
  rec_ "clean_goodput_mb_s" clean_bw;

  let failover_plan =
    [ { Plan.at_ns = Time.ms 5; action = Plan.Link_down "san" } ]
  in
  let fo_bw, fo_st = resilient_echo ~plan:failover_plan () in
  Printf.printf "%-42s %10.2f MB/s  (driver %s)\n"
    "resilient echo 8 MB, SAN down at 5 ms" fo_bw fo_st.Resilient.driver;
  Printf.printf "%-42s %10d\n" "  adapter switches" fo_st.Resilient.switches;
  Printf.printf "%-42s %10d\n" "  reconnect attempts" fo_st.Resilient.retries;
  Printf.printf "%-42s %10.3f ms\n" "  downtime (virtual)"
    (float_of_int fo_st.Resilient.downtime_ns /. 1e6);
  rec_ "failover_goodput_mb_s" fo_bw;
  rec_ "failover_switches" (float_of_int fo_st.Resilient.switches);
  rec_ "failover_retries" (float_of_int fo_st.Resilient.retries);
  rec_ "failover_downtime_ms"
    (float_of_int fo_st.Resilient.downtime_ns /. 1e6);

  let lan_bw = lan_only_goodput () in
  Printf.printf "%-42s %10.2f MB/s  (one-way floor)\n"
    "LAN-only baseline (Fast Ethernet)" lan_bw;
  rec_ "lan_only_bw_mb_s" lan_bw;

  if fo_st.Resilient.switches < 1 then
    print_endline "WARNING: no failover happened — check the plan!"
