(* E13: topology-aware collectives at grid scale.

   An 8-island grid (128 Myrinet nodes per island, one shared VTHD WAN
   backbone, 1024 ranks) runs every collective under both Group strategies.
   The quantity at stake is WAN crossings: the flat rank-0 star pays one
   crossing per rank outside the root's island, the multilevel strategy one
   per cluster per phase. Payload delivered is cross-checked between the two
   strategies (checksums must agree), and the broadcast WAN-message
   reduction is asserted to be at least an order of magnitude. *)

module Bb = Engine.Bytebuf
module Group = Collectives.Group
module Gridgen = Scenario.Gridgen

let clusters = 8
let per_cluster = 128
let payload = 4096 (* bcast / reduce / allreduce *)
let chunk = 64 (* per-rank gather / scatter *)

let pattern n seed =
  let b = Bb.create n in
  Bb.fill_pattern b ~seed;
  b

type meas = {
  msgs : int;  (* Group-level WAN crossings *)
  bytes : int;
  sum : int;  (* checksum of payload delivered, summed over ranks *)
  ns : int;  (* virtual completion time *)
}

(* Run [body r member] as one process per rank, to quiescence; return the
   WAN traffic this operation added and the summed delivery checksum. *)
let measure g nodes groups label body =
  let gm0 = groups.(0) in
  let m0 = Group.wan_messages gm0 and b0 = Group.wan_bytes gm0 in
  let t0 = Padico.now g.Gridgen.grid in
  let sum = ref 0 in
  (* Completion = when the last rank's operation finished, not when the
     simulator drained (stale transport timers run long past the op). *)
  let t1 = ref t0 in
  let hs =
    Array.mapi
      (fun r node ->
         Padico.spawn g.Gridgen.grid node
           ~name:(Printf.sprintf "%s-%d" label r)
           (fun () ->
              sum := !sum + body r groups.(r);
              t1 := max !t1 (Padico.now g.Gridgen.grid)))
      nodes
  in
  Scenario.run g.Gridgen.grid;
  Array.iter Scenario.fail_on_error hs;
  { msgs = Group.wan_messages gm0 - m0;
    bytes = Group.wan_bytes gm0 - b0;
    sum = !sum;
    ns = !t1 - t0 }

let run_strategy strategy sname =
  let g = Gridgen.generate ~clusters ~nodes_per_cluster:per_cluster () in
  let nodes = Array.of_list g.Gridgen.nodes in
  let groups =
    Group.create ~strategy g.Gridgen.grid ~name:("e13-" ^ sname)
      g.Gridgen.nodes
  in
  let n = Array.length nodes in
  List.map
    (fun (op_name, body) ->
       (op_name, measure g nodes groups (sname ^ "-" ^ op_name) body))
    [ ("barrier", fun _r gm -> Group.barrier gm; 0);
      ("bcast",
       fun r gm ->
         let buf = if r = 0 then pattern payload 42 else Bb.create 0 in
         Bb.checksum (Group.bcast gm ~root:0 buf));
      ("reduce",
       fun r gm ->
         match
           Group.reduce gm ~root:0 ~op:Group.Sum (pattern payload (r + 1))
         with
         | Some b -> Bb.checksum b
         | None -> 0);
      ("allreduce",
       fun r gm ->
         Bb.checksum
           (Group.allreduce gm ~op:Group.Bxor (pattern payload (r + 1))));
      ("gather",
       fun r gm ->
         match Group.gather gm ~root:0 (pattern chunk (r + 1)) with
         | Some parts ->
           Array.fold_left (fun a b -> a + Bb.checksum b) 0 parts
         | None -> 0);
      ("scatter",
       fun r gm ->
         let parts =
           if r = 0 then Array.init n (fun i -> pattern chunk (i + 1))
           else [||]
         in
         Bb.checksum (Group.scatter gm ~root:0 parts)) ]

let run () =
  Scenario.print_header
    (Printf.sprintf
       "E13: collectives at grid scale (%d clusters x %d nodes = %d ranks)"
       clusters per_cluster (clusters * per_cluster));
  let flat = run_strategy Group.Flat "flat" in
  let ml = run_strategy Group.Multilevel "ml" in
  Printf.printf
    "%-10s %11s %12s %11s %12s %9s %9s\n"
    "op" "flat msgs" "flat bytes" "ml msgs" "ml bytes" "msg x" "time x";
  List.iter2
    (fun (op, f) (op', m) ->
       assert (op = op');
       if f.sum <> m.sum then begin
         Printf.eprintf
           "e13 %s: strategies delivered different payloads (%d vs %d)\n" op
           f.sum m.sum;
         exit 1
       end;
       let ratio a b = if b = 0 then Float.nan else float_of_int a /. float_of_int b in
       Printf.printf "%-10s %11d %12d %11d %12d %9.1f %9.2f\n" op f.msgs
         f.bytes m.msgs m.bytes
         (ratio f.msgs m.msgs)
         (ratio f.ns m.ns);
       Bhelp.record ~experiment:"e13" (op ^ ".flat.wan_msgs")
         (float_of_int f.msgs);
       Bhelp.record ~experiment:"e13" (op ^ ".flat.wan_bytes")
         (float_of_int f.bytes);
       Bhelp.record ~experiment:"e13" (op ^ ".ml.wan_msgs")
         (float_of_int m.msgs);
       Bhelp.record ~experiment:"e13" (op ^ ".ml.wan_bytes")
         (float_of_int m.bytes))
    flat ml;
  let f_bcast = List.assoc "bcast" flat and m_bcast = List.assoc "bcast" ml in
  let msg_ratio =
    float_of_int f_bcast.msgs /. float_of_int (max 1 m_bcast.msgs)
  in
  let byte_ratio =
    float_of_int f_bcast.bytes /. float_of_int (max 1 m_bcast.bytes)
  in
  Bhelp.record ~experiment:"e13" "bcast.wan_msg_ratio" msg_ratio;
  Bhelp.record ~experiment:"e13" "bcast.wan_byte_ratio" byte_ratio;
  Printf.printf
    "\nbroadcast WAN reduction: %.0fx messages, %.0fx bytes (flat %d -> multilevel %d msgs)\n"
    msg_ratio byte_ratio f_bcast.msgs m_bcast.msgs;
  if msg_ratio < 10.0 || byte_ratio < 10.0 then begin
    Printf.eprintf
      "e13: multilevel broadcast must cut WAN traffic >= 10x (got %.1fx msgs, %.1fx bytes)\n"
      msg_ratio byte_ratio;
    exit 1
  end
