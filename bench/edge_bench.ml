(* E15: edge gateway at 100k connections.

   A sharded frontend (4 gateway nodes) accepts a WAN client population
   with churn, mid-handshake aborts and heavy-tailed (Pareto) request
   sizes. The sweep grows the population 1k -> 10k -> 100k with a fixed
   20 % active fraction (an edge gateway's steady state: most connections
   idle) and checks that the capacity machinery keeps the cost model flat:

   - per-connection wall-clock cost stays near-flat as the population
     grows 100x (budget 2.5x for 100k vs 1k) — no O(watched) scan
     anywhere on the dispatch path (readiness queues), no per-timer
     heap entries (timewheel RTOs), no eager buffers (lazy pooled
     rings). The budget is above 1 because the comparison deliberately
     crosses cache tiers: a 1k gateway's whole working set fits in L2
     (~1.3 MB live) while 100k lives in DRAM (~130 MB), so memory
     latency grows even though the work per connection does not —
     allocation per connection and resident bytes per connection are
     exactly scale-flat, which is the algorithmic claim. An O(watched)
     scan would show up as a 10-100x ratio here, not 2x;
   - idle connections do zero ready-queue work: after the run quiesces,
     every registered source is off the ready list;
   - resident bytes per connection stay under the fixed budget
     (conn overhead + one pooled ring + transient receive bytes).

   Sim numbers are virtual-time and deterministic, recorded under e15
   keys. Under --backend host the same scenario runs over real Unix
   sockets with the population capped to 400 clients: both connection
   endpoints plus listeners live in one process, so ~2.2 fds/connection
   must stay under the select() FD_SETSIZE ceiling of 1024 that
   Hostio.Loop enforces; wall-clock metrics land under e15_host keys. *)

module Time = Engine.Time
module Sysio = Netaccess.Sysio
module Na_core = Netaccess.Na_core
module Tcp = Drivers.Tcp
module Gridgen = Scenario.Gridgen

(* EDGE_CHURN / EDGE_ACTIVE override the workload mix for exploration
   (e.g. EDGE_CHURN=0 EDGE_ACTIVE=0 isolates the pure handshake+idle
   population); defaults are the documented E15 configuration. *)
let churn = try float_of_string (Sys.getenv "EDGE_CHURN") with Not_found -> 0.05
let tail = 1.3
let active_frac = try float_of_string (Sys.getenv "EDGE_ACTIVE") with Not_found -> 0.2

let sum_over_nodes f nodes =
  List.fold_left (fun acc n -> acc + f (Sysio.get n)) 0 nodes

let run_sweep ~clients =
  (* The per-connection cost is wall-clock: start every sweep from the
     same compacted heap so the ratios compare dispatch work, not the
     GC debris of whichever experiment ran before, and give the sweep a
     server-sized GC budget (large minor heap, lazy major slices, no
     compaction) — a 100k-connection gateway holds ~130 MB live, and
     default desktop GC pacing would charge every sweep for walking it,
     drowning the O(active) dispatch signal being measured. Dropping
     the module registries first actually frees the previous sweeps'
     grids (they stay reachable through the uid-keyed tables). *)
  Padico.reset ();
  Gc.compact ();
  let gc = Gc.get () in
  Gc.set { gc with Gc.minor_heap_size = 32 * 1024 * 1024;
           space_overhead = 1000; max_overhead = 1_000_000 };
  (* Pre-fault the fresh minor heap: the compaction above returned the
     previous scenario's pages to the OS, and first-touch faults on the
     replacement arena must not land inside the measured window. *)
  for _ = 1 to 16 * 1024 * 1024 do
    ignore (Sys.opaque_identity (ref 0))
  done;
  let e = Gridgen.edge ~clients ~churn ~tail () in
  let active = max 1 (int_of_float (float_of_int clients *. active_frac)) in
  let t0 = Unix.gettimeofday () in
  let stats = Gridgen.run_edge ~active e in
  let wall_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
  let all = e.Gridgen.e_shards @ e.Gridgen.e_clients in
  let conns = sum_over_nodes Sysio.conn_count e.Gridgen.e_shards in
  let resident = sum_over_nodes Sysio.bytes_resident e.Gridgen.e_shards in
  let reaped = sum_over_nodes Sysio.conns_reaped all in
  let ready_depth =
    sum_over_nodes (fun s -> Na_core.ready_depth (Na_core.get (Sysio.node s))) all
  in
  let sources =
    sum_over_nodes (fun s -> Na_core.source_count (Na_core.get (Sysio.node s))) all
  in
  Gc.set gc;
  (stats, wall_ns /. float_of_int clients, conns, resident, reaped,
   ready_depth, sources)

let run_sim () =
  let sweep = [ ("1k", 1_000, 3); ("10k", 10_000, 3); ("100k", 100_000, 2) ] in
  let per_conn = Hashtbl.create 4 in
  List.iter
    (fun (label, clients, repeats) ->
       (* Wall-clock noise (page faults, frequency, interrupts) is
          strictly additive, so the minimum over a few repeats is the
          cost estimator; the virtual-time outcomes are deterministic
          and identical across repeats. *)
       let best = ref None in
       for _ = 1 to repeats do
         let r = run_sweep ~clients in
         let (_, ns, _, _, _, _, _) = r in
         match !best with
         | Some (_, best_ns, _, _, _, _, _) when best_ns <= ns -> ()
         | _ -> best := Some r
       done;
       let stats, per_conn_ns, conns, resident, reaped, ready_depth, sources =
         Option.get !best
       in
       Hashtbl.replace per_conn label per_conn_ns;
       let bytes_per_conn =
         if conns = 0 then 0.0 else float_of_int resident /. float_of_int conns
       in
       Printf.printf
         "  %-5s %7d est  %6d req  %5d srv  %5d rejoin  %4d abort  %7.0f \
          ns/conn  %6.0f B/conn  %6d reaped  ready %d/%d\n%!"
         label stats.Gridgen.es_established stats.Gridgen.es_requests
         stats.Gridgen.es_served stats.Gridgen.es_reconnects
         stats.Gridgen.es_aborted per_conn_ns bytes_per_conn reaped
         ready_depth sources;
       let rec_ k v = Bhelp.record ~experiment:"e15" (Printf.sprintf "sweep_%s.%s" label k) v in
       rec_ "established" (float_of_int stats.Gridgen.es_established);
       rec_ "requests" (float_of_int stats.Gridgen.es_requests);
       rec_ "served" (float_of_int stats.Gridgen.es_served);
       rec_ "reconnects" (float_of_int stats.Gridgen.es_reconnects);
       rec_ "aborted_handshakes" (float_of_int stats.Gridgen.es_aborted);
       rec_ "per_conn_ns" per_conn_ns;
       rec_ "bytes_per_conn" bytes_per_conn;
       rec_ "reaped" (float_of_int reaped);
       (* Idle connections cost zero per dispatch round: they are
          registered sources *off* the ready list once the run drains. *)
       rec_ "idle_ready_depth" (float_of_int ready_depth);
       rec_ "idle_sources" (float_of_int sources))
    sweep;
  let ratio1 =
    Hashtbl.find per_conn "100k" /. Hashtbl.find per_conn "1k"
  in
  let ratio10 =
    Hashtbl.find per_conn "100k" /. Hashtbl.find per_conn "10k"
  in
  Printf.printf
    "  per-conn cost ratio 100k vs 1k: %.2f  vs 10k: %.2f (budget 2.5 \
     incl. the L2->DRAM working-set shift; resident bytes and \
     allocation per conn are scale-flat)\n%!"
    ratio1 ratio10;
  Bhelp.record ~experiment:"e15" "cost_ratio_100k_vs_1k" ratio1;
  Bhelp.record ~experiment:"e15" "cost_ratio_100k_vs_10k" ratio10

(* Host subset: 400 clients, no churn (real sockets + TIME_WAIT make
   churned ports noisy), bounded by wall-clock deadline since idle real
   connections keep the reactor alive. *)
let run_host () =
  let clients = 400 in
  let e = Gridgen.edge ~backend:Padico.Host ~client_nodes:4 ~clients
      ~churn:0.0 ~tail () in
  let t0 = Unix.gettimeofday () in
  let stats = Gridgen.run_edge ~ramp_ns:50_000 ~until:(Time.sec 5) e in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
  Printf.printf
    "  host  %5d est  %5d req  %5d srv  (%d clients, %.0f ms wall, fd \
     ceiling %d)\n%!"
    stats.Gridgen.es_established stats.Gridgen.es_requests
    stats.Gridgen.es_served clients wall_ms Hostio.Loop.fd_limit;
  let rec_ k v = Bhelp.record ~experiment:"e15_host" k v in
  rec_ "clients" (float_of_int clients);
  rec_ "established" (float_of_int stats.Gridgen.es_established);
  rec_ "requests" (float_of_int stats.Gridgen.es_requests);
  rec_ "served" (float_of_int stats.Gridgen.es_served);
  rec_ "wall_ms" wall_ms

(* --domains N: the same gateway, every node its own shard, executed by
   the conservative parallel engine. One bounded population (the CI
   multicore smoke), virtual-time outcomes identical to a 1-domain run
   of the same sharded grid by construction (asserted cheaply here, and
   exhaustively in test/test_shard.ml). *)
let run_sharded ~domains =
  Padico.reset ();
  let clients = 2_000 in
  let run d =
    Padico.reset ();
    let e = Gridgen.edge ~sharded:true ~clients ~churn ~tail () in
    let t0 = Unix.gettimeofday () in
    let stats = Gridgen.run_edge ~domains:d e in
    ((Unix.gettimeofday () -. t0) *. 1e3, stats)
  in
  let wall1, ref_stats = run 1 in
  let wall_d, stats = run domains in
  if stats <> ref_stats then begin
    Printf.eprintf "e15 sharded: outcomes differ between 1 and %d domains\n"
      domains;
    exit 1
  end;
  Printf.printf
    "  sharded %5d est  %5d req  %5d srv  (%d clients, %d domains: %.0f      ms vs %.0f ms on 1)\n%!"
    stats.Gridgen.es_established stats.Gridgen.es_requests
    stats.Gridgen.es_served clients domains wall_d wall1;
  let rec_ k v = Bhelp.record ~experiment:"e15" ("sharded." ^ k) v in
  rec_ "clients" (float_of_int clients);
  rec_ "domains" (float_of_int domains);
  rec_ "established" (float_of_int stats.Gridgen.es_established);
  rec_ "served" (float_of_int stats.Gridgen.es_served);
  rec_ "wall_ms_1" wall1;
  rec_ "wall_ms_n" wall_d

let run () =
  print_endline "E15: edge gateway at 100k connections";
  match (!Bhelp.backend, !Bhelp.domains) with
  | Padico.Sim, 1 -> run_sim ()
  | Padico.Sim, d -> run_sharded ~domains:d
  | Padico.Host, _ -> run_host ()
