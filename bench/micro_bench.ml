(* Wall-clock micro-benchmarks (Bechamel): the real CPU cost of the
   framework's hot paths — marshalling, compression, ciphering, the event
   queue. These are host-time measurements, complementary to the
   virtual-time experiments. *)

module Bb = Engine.Bytebuf
module Cdr = Mw_corba.Cdr

open Bechamel
open Toolkit

let payload_64k = Bb.create 65_536

let () = Bb.fill_pattern payload_64k ~seed:3

let compressible_64k =
  let b = Bb.create 65_536 in
  (* Mildly repetitive content. *)
  for i = 0 to Bb.length b - 1 do
    Bb.set_u8 b i (i mod 61)
  done;
  b

let lz_packed = Methods.Lz.compress compressible_64k

let crypto_key = Methods.Crypto.key_of_string "bench"

let value_64k = Cdr.VOctets payload_64k

let test_lz_compress =
  Test.make ~name:"lz.compress 64KB"
    (Staged.stage (fun () -> ignore (Methods.Lz.compress compressible_64k)))

let test_lz_decompress =
  Test.make ~name:"lz.decompress 64KB"
    (Staged.stage (fun () -> ignore (Methods.Lz.decompress lz_packed)))

let test_cdr_encode_zero_copy =
  Test.make ~name:"cdr.encode omniORB4 64KB"
    (Staged.stage (fun () -> ignore (Cdr.encode_iov Cdr.omniorb4 value_64k)))

let test_cdr_encode_copying =
  Test.make ~name:"cdr.encode Mico 64KB"
    (Staged.stage (fun () -> ignore (Cdr.encode_iov Cdr.mico value_64k)))

let test_crypto =
  Test.make ~name:"crypto.encrypt 64KB"
    (Staged.stage (fun () -> ignore (Methods.Crypto.encrypt crypto_key payload_64k)))

let test_heap =
  Test.make ~name:"heap push+pop x1000"
    (Staged.stage (fun () ->
         let h = Engine.Heap.create () in
         for i = 0 to 999 do
           Engine.Heap.push h ~prio:(i * 7919 mod 1000) i
         done;
         while not (Engine.Heap.is_empty h) do
           ignore (Engine.Heap.pop h)
         done))

let test_base64 =
  Test.make ~name:"soap.base64 64KB"
    (Staged.stage (fun () ->
         ignore (Mw_soap.Soap.base64_encode (Bb.to_string payload_64k))))

(* Streamq.pop must be O(1) in the standing queue depth: the remainder
   of a split head chunk lives in a dedicated front slot — re-inserting
   it through the FIFO would cost a full-queue transfer per bounded
   read. Steady state per run: one 128 B push, two 64 B split pops, so
   the depth stays constant while every pop exercises the split path. *)
let streamq_at_depth depth =
  let q = Vlink.Streamq.create () in
  for _ = 1 to depth do
    Vlink.Streamq.push q (Bb.create 128)
  done;
  q

let q_shallow = streamq_at_depth 1_000

let q_deep = streamq_at_depth 64_000

let streamq_test q name =
  Test.make ~name
    (Staged.stage (fun () ->
         Vlink.Streamq.push q (Bb.create 128);
         ignore (Vlink.Streamq.pop q ~max:64);
         ignore (Vlink.Streamq.pop q ~max:64)))

let test_streamq_shallow = streamq_test q_shallow "streamq.pop depth=1k"

let test_streamq_deep = streamq_test q_deep "streamq.pop depth=64k"

let benchmark () =
  let tests =
    Test.make_grouped ~name:"padico"
      [ test_lz_compress; test_lz_decompress; test_cdr_encode_zero_copy;
        test_cdr_encode_copying; test_crypto; test_heap; test_base64;
        test_streamq_shallow; test_streamq_deep ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  results

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let run () =
  Bhelp.print_header "Microbenchmarks (real wall-clock, Bechamel OLS)";
  let results = benchmark () in
  Hashtbl.iter
    (fun name ols ->
       match Analyze.OLS.estimates ols with
       | Some [ est ] -> Printf.printf "%-32s %12.1f ns/run\n" name est
       | _ -> Printf.printf "%-32s (no estimate)\n" name)
    results;
  (* The O(1) claim, asserted: a 64x deeper queue must not make the
     split-pop meaningfully slower (8x is far beyond measurement noise
     but far below the O(depth) behaviour of front re-insertion). *)
  let estimate sub =
    Hashtbl.fold
      (fun name ols acc ->
         if acc <> None || not (contains name sub) then acc
         else
           match Analyze.OLS.estimates ols with
           | Some [ est ] -> Some est
           | _ -> None)
      results None
  in
  match (estimate "streamq.pop depth=1k", estimate "streamq.pop depth=64k") with
  | Some shallow, Some deep ->
    Printf.printf
      "streamq.pop O(1) check: %.1f ns at depth 1k vs %.1f ns at depth 64k\n"
      shallow deep;
    if deep > 8.0 *. Float.max shallow 1.0 then
      failwith "Streamq.pop scales with queue depth (expected O(1))"
  | _ -> failwith "streamq.pop estimates missing"
