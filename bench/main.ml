(* Benchmark harness: one experiment per table/figure of the paper (see
   DESIGN.md section 4). Run all with no argument, or one by name.
   --backend host reruns the host-capable experiments over real Unix
   sockets; their wall-clock metrics land under *_host keys. *)

let experiments =
  [ ("fig3", "Figure 3: bandwidth vs message size over Myrinet", Fig3.run);
    ("table1", "Table 1: latency and max bandwidth", Table1.run);
    ("madio", "E3: MadIO overhead over plain Madeleine", Madio_bench.run);
    ("wan", "E4: VTHD WAN + parallel streams", Wan_bench.run);
    ("vrp", "E5: lossy link, TCP vs VRP", Vrp_bench.run);
    ("arbitration", "E6: middleware sharing a node", Arb_bench.run);
    ("adoc", "E7: adaptive online compression", Adoc_bench.run);
    ("copies", "E8: marshalling-copies ablation", Copies_bench.run);
    ("obs", "E9: tracing overhead on the MadIO hot path", Obs_bench.run);
    ("fault", "E10: fault injection and failover resilience", Fault_bench.run);
    ("flow", "E11: flow control and overload protection", Flow_bench.run);
    ("sched", "E12: adaptive arbitration and small-message aggregation",
     Sched_bench.run);
    ("collect", "E13: topology-aware collectives at grid scale",
     Coll_bench.run);
    ("detect", "E14: self-healing collectives under member crash",
     Detect_bench.run);
    ("edge", "E15: edge gateway at 100k connections", Edge_bench.run);
    ("shard", "E16: multicore engine, conservative parallel simulation",
     Shard_bench.run);
    ("micro", "wall-clock microbenchmarks", Micro_bench.run) ]

(* Experiments meaningful on real sockets (the rest model SAN hardware,
   loss or virtual-time schedules the OS does not expose). *)
let host_capable = [ "flow"; "detect"; "edge"; "micro" ]

let usage () =
  print_endline
    "usage: bench/main.exe [--backend sim|host] [--domains N] [experiment]";
  print_endline "experiments:";
  List.iter
    (fun (name, descr, _) -> Printf.printf "  %-12s %s\n" name descr)
    experiments;
  print_endline "  all          run everything (default)"

let () =
  Printexc.record_backtrace true;
  let args = Array.to_list Sys.argv |> List.tl in
  let rec strip_backend = function
    | "--backend" :: "host" :: rest ->
      Bhelp.backend := Padico.Host;
      strip_backend rest
    | "--backend" :: "sim" :: rest ->
      Bhelp.backend := Padico.Sim;
      strip_backend rest
    | "--backend" :: other :: _ ->
      Printf.eprintf "unknown backend %S (sim|host)\n" other;
      exit 2
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
       | Some d when d >= 1 ->
         Bhelp.domains := d;
         strip_backend rest
       | _ ->
         Printf.eprintf "--domains wants a positive integer, got %S\n" n;
         exit 2)
    | x :: rest -> x :: strip_backend rest
    | [] -> []
  in
  let args = strip_backend args in
  let experiments =
    if !Bhelp.backend = Padico.Host then
      List.filter (fun (n, _, _) -> List.mem n host_capable) experiments
    else experiments
  in
  (* Each experiment builds fresh grids; dropping the uid-keyed module
     registries between experiments keeps earlier grids (e.g. E13/E14's
     1024-rank trees) from skewing later wall-clock measurements. *)
  let run_isolated run = run (); Padico.reset () in
  match args with
  | [] | [ "all" ] ->
    List.iter (fun (_, _, run) -> run_isolated run) experiments;
    Bhelp.write_results ()
  | names ->
    (* Several experiment names run in one invocation so the accumulated
       BENCH_results.json keeps every metric (e.g. `fault flow` in CI). *)
    let runs =
      List.map
        (fun name ->
           match List.find_opt (fun (n, _, _) -> n = name) experiments with
           | Some (_, _, run) -> Some run
           | None -> None)
        names
    in
    if List.exists Option.is_none runs then usage ()
    else begin
      List.iter (function Some run -> run_isolated run | None -> ()) runs;
      Bhelp.write_results ()
    end
