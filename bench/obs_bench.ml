(* Obs — tracing overhead on the MadIO ping-pong hot path.

   Two claims to check:
   1. virtual-time neutrality: instrumentation charges no simulated cost, so
      the measured one-way latency is bit-identical with tracing disabled,
      enabled, or compared to a build without any tracing (the seed);
   2. host-time cost: with tracing disabled the only added work is one
      load+branch per event site, so wall-clock per simulated round must be
      within noise of the seed; enabled tracing pays for ring-buffer writes
      only.

   Numbers are recorded in EXPERIMENTS.md (experiment E9). *)

module Bb = Engine.Bytebuf
module Mad = Madeleine.Mad
module Madio = Netaccess.Madio
module Trace = Padico_obs.Trace

let iters = 5000

(* MadIO logical-channel ping-pong — the E3 hot path. Returns (one-way
   virtual latency in us, wall-clock seconds for the whole run). *)
let madio_pingpong () =
  let grid, a, b = Bhelp.myrinet_pair () in
  let net = Padico.net grid in
  let seg = Option.get (Simnet.Net.best_link net a b) in
  let ma = Madio.init (Mad.init seg a) in
  let mb = Madio.init (Mad.init seg b) in
  let la = Madio.open_lchannel ma ~id:42 in
  let lb = Madio.open_lchannel mb ~id:42 in
  Madio.set_recv lb (fun ~src:_ buf -> Madio.send lb ~dst:(Simnet.Node.id a) buf);
  let count = ref 0 in
  let t0 = ref 0 and t1 = ref 0 in
  Madio.set_recv la (fun ~src:_ buf ->
      incr count;
      if !count = 10 then t0 := Padico.now grid;
      if !count < iters + 10 then Madio.send la ~dst:(Simnet.Node.id b) buf
      else t1 := Padico.now grid);
  let wall0 = Unix.gettimeofday () in
  Madio.send la ~dst:(Simnet.Node.id b) (Bb.create 4);
  Bhelp.run grid;
  let wall1 = Unix.gettimeofday () in
  ( float_of_int (!t1 - !t0) /. float_of_int iters /. 2.0 /. 1e3,
    wall1 -. wall0 )

let best_of n f =
  let lat = ref nan and wall = ref infinity in
  for _ = 1 to n do
    let l, w = f () in
    lat := l;
    if w < !wall then wall := w
  done;
  (!lat, !wall)

let run () =
  Bhelp.print_header
    "E9 — tracing overhead on the MadIO ping-pong path (5000 rounds)";
  Trace.disable ();
  let lat_off, wall_off = best_of 3 madio_pingpong in
  (* A capacity large enough that the enabled run never drops (each round
     emits a handful of events per side). *)
  let lat_on, wall_on =
    best_of 3 (fun () ->
        Trace.enable ~capacity:262_144 ();
        let r = madio_pingpong () in
        Trace.disable ();
        r)
  in
  let traced = Trace.length () + Trace.dropped () in
  Printf.printf "%-34s %8.3f us   wall %6.0f ms\n" "tracing disabled" lat_off
    (wall_off *. 1e3);
  Printf.printf "%-34s %8.3f us   wall %6.0f ms   (%d records)\n"
    "tracing enabled" lat_on (wall_on *. 1e3) traced;
  Printf.printf "virtual-time delta enabled-disabled: %+.3f us (must be 0)\n"
    (lat_on -. lat_off);
  Printf.printf
    "wall-clock cost of enabled tracing: %+.1f%% on this hot path\n"
    ((wall_on /. wall_off -. 1.0) *. 100.0);
  Printf.printf
    "disabled-path check: latency must equal the seed E3 figure (7.254 us)\n"
