include Scenario

(* Machine-readable results: experiments record named metrics as they print
   them; the harness writes the accumulated set to BENCH_results.json so CI
   and regression tooling can diff numbers without scraping stdout. *)

let results : (string * float) list ref = ref []

let record ~experiment key value =
  results := (experiment ^ "." ^ key, value) :: !results

let write_results ?(file = "BENCH_results.json") () =
  let oc = open_out file in
  let entries = List.rev !results in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
       Printf.fprintf oc "  %S: %s%s\n" k
         (if Float.is_integer v && Float.abs v < 1e15 then
            Printf.sprintf "%.0f" v
          else Printf.sprintf "%.6g" v)
         (if i = List.length entries - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "\n%d metrics -> %s\n" (List.length entries) file
