include Scenario

(* Execution backend for the whole bench invocation (set once by main from
   --backend). Experiments that support the host backend consult it; their
   metrics go under distinct keys so wall-clock numbers never overwrite the
   virtual-time trajectory. *)
let backend = ref Padico.Sim

(* Worker-domain count for experiments that can run their grids on the
   sharded parallel engine (set once by main from --domains; 1 = classic
   single-heap execution). *)
let domains = ref 1

(* Machine-readable results: experiments record named metrics as they print
   them; the harness writes the accumulated set to BENCH_results.json so CI
   and regression tooling can diff numbers without scraping stdout. *)

let results : (string * float) list ref = ref []

let record ~experiment key value =
  results := (experiment ^ "." ^ key, value) :: !results

(* Metrics already on disk, so a partial run (CI smoke steps run a handful
   of experiments) refreshes its own numbers without erasing the rest of
   the perf trajectory. *)
let previous_results file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Padico_obs.Json.parse s with
    | Ok (Padico_obs.Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) ->
           match v with
           | Padico_obs.Json.Int i -> Some (k, float_of_int i)
           | Padico_obs.Json.Float f -> Some (k, f)
           | _ -> None)
        kvs
    | Ok _ | Error _ -> []
  end

let write_results ?(file = "BENCH_results.json") () =
  let fresh = List.rev !results in
  (* Read the previous metrics *before* open_out truncates the file. *)
  let previous = previous_results file in
  let oc = open_out file in
  let entries =
    List.map
      (fun (k, v) ->
         match List.assoc_opt k fresh with Some v' -> (k, v') | None -> (k, v))
      previous
    @ List.filter (fun (k, _) -> not (List.mem_assoc k previous)) fresh
  in
  output_string oc "{\n";
  List.iteri
    (fun i (k, v) ->
       Printf.fprintf oc "  %S: %s%s\n" k
         (if Float.is_integer v && Float.abs v < 1e15 then
            Printf.sprintf "%.0f" v
          else Printf.sprintf "%.6g" v)
         (if i = List.length entries - 1 then "" else ","))
    entries;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "\n%d metrics -> %s\n" (List.length entries) file
